#ifndef PSPC_SRC_SERVE_SNAPSHOT_MANAGER_H_
#define PSPC_SRC_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/epoch_manager.h"
#include "src/serve/index_snapshot.h"

/// RCU-style publication of `IndexSnapshot` generations.
///
/// The writer swaps a new snapshot into an atomic pointer, retires the
/// old one tagged with the post-swap epoch, and reclaims retired
/// generations once every pinned reader has drained past them (see
/// epoch_manager.h for the safety argument). Readers Acquire() a
/// `SnapshotRef` — an epoch pin plus the pointer — and query the
/// immutable view for as long as they hold the ref, entirely
/// independent of any concurrently publishing writer.
namespace pspc {

class SnapshotManager;

/// Epoch-pinned reference to a published snapshot. Movable, not
/// copyable; the pointee stays valid (and immutable) until the ref is
/// destroyed. Hold it for a micro-batch of queries, not indefinitely —
/// a pinned epoch delays reclamation of every later generation.
class SnapshotRef {
 public:
  SnapshotRef(SnapshotRef&& other) noexcept
      : epochs_(std::exchange(other.epochs_, nullptr)),
        slot_(other.slot_),
        snapshot_(other.snapshot_),
        pin_us_(other.pin_us_),
        enter_ns_(other.enter_ns_) {}
  SnapshotRef& operator=(SnapshotRef&& other) noexcept {
    if (this != &other) {
      Release();
      epochs_ = std::exchange(other.epochs_, nullptr);
      slot_ = other.slot_;
      snapshot_ = other.snapshot_;
      pin_us_ = other.pin_us_;
      enter_ns_ = other.enter_ns_;
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef() { Release(); }

  const IndexSnapshot* get() const { return snapshot_; }
  const IndexSnapshot* operator->() const { return snapshot_; }
  const IndexSnapshot& operator*() const { return *snapshot_; }

 private:
  friend class SnapshotManager;
  SnapshotRef(EpochManager* epochs, size_t slot,
              const IndexSnapshot* snapshot, obs::Histogram* pin_us,
              int64_t enter_ns)
      : epochs_(epochs),
        slot_(slot),
        snapshot_(snapshot),
        pin_us_(pin_us),
        enter_ns_(enter_ns) {}

  void Release() {
    if (epochs_ != nullptr) {
      epochs_->Exit(slot_);
      epochs_ = nullptr;
      // How long this pin delayed reclamation — the RCU health signal
      // (a fat tail here explains a growing retired backlog).
      pin_us_->Record(static_cast<double>(obs::TraceNowNs() - enter_ns_) *
                      1e-3);
    }
  }

  EpochManager* epochs_ = nullptr;
  size_t slot_ = 0;
  const IndexSnapshot* snapshot_ = nullptr;
  obs::Histogram* pin_us_ = nullptr;
  int64_t enter_ns_ = 0;
};

class SnapshotManager {
 public:
  /// `registry == nullptr` selects the process-global registry for the
  /// publication metrics (publish cost, reclaim backlog, reader-pin
  /// duration, epoch-overflow pins); `recorder == nullptr` likewise
  /// selects the global flight recorder for publish/reclaim events.
  explicit SnapshotManager(std::unique_ptr<const IndexSnapshot> initial,
                           obs::MetricsRegistry* registry = nullptr,
                           obs::FlightRecorder* recorder = nullptr);

  /// Requires no reader still pinned (the owning engine joins its
  /// workers first); frees the current and all retired snapshots.
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Reader-side: pins the current epoch and returns the snapshot that
  /// was current at the pin. Never blocks and takes no locks.
  SnapshotRef Acquire() const;

  /// Writer-side (externally serialized): makes `next` the current
  /// snapshot, retires the previous one, and reclaims every retired
  /// generation no pinned reader can still see. Reclaiming deletes the
  /// snapshot, which releases its overlay page and label-chunk
  /// references — chunks shared with newer generations live on;
  /// chunks only the retired generation could reach are freed here.
  void Publish(std::unique_ptr<const IndexSnapshot> next);

  /// Generation of the currently published snapshot.
  uint64_t PublishedGeneration() const { return Acquire()->Generation(); }

  /// Retired-but-not-yet-reclaimed generations. Readable from any
  /// thread (relaxed mirror of the writer's list size).
  size_t RetiredCount() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

  /// Generations freed so far. Readable from any thread.
  size_t ReclaimedCount() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  /// Publish-cost bookkeeping (readable from any thread): vertices
  /// whose label chunk the most recent / every Publish had to copy —
  /// the O(delta) the persistent overlay buys (the map-copy design
  /// paid the whole overlay per publish).
  size_t LastPublishCopiedVertices() const {
    return copied_last_.load(std::memory_order_relaxed);
  }
  size_t TotalPublishCopiedVertices() const {
    return copied_total_.load(std::memory_order_relaxed);
  }

  /// Currently pinned readers (diagnostics).
  size_t ActiveReaders() const { return epochs_.ActiveReaders(); }

  /// Wall cost of the most recent Publish's reclaim sweep
  /// (microseconds; the write-path trace's reclaim span).
  double LastReclaimMicros() const {
    return last_reclaim_us_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    const IndexSnapshot* snapshot;
    uint64_t epoch;  // reclaim once min(active) >= this
  };

  void Reclaim();

  mutable EpochManager epochs_;
  std::atomic<const IndexSnapshot*> current_;
  std::vector<Retired> retired_;  // writer thread only
  // Writer-updated, any-thread-readable mirrors of the bookkeeping
  // above (Counters() polls them without the writer mutex).
  std::atomic<size_t> retired_count_{0};
  std::atomic<size_t> reclaimed_{0};
  std::atomic<size_t> copied_last_{0};
  std::atomic<size_t> copied_total_{0};
  std::atomic<double> last_reclaim_us_{0.0};

  // Registry handles (resolved once at construction).
  obs::Counter* reclaimed_total_counter_;
  obs::Counter* copied_total_counter_;
  obs::Gauge* retired_pending_gauge_;
  obs::Gauge* copied_last_gauge_;
  obs::Gauge* active_readers_gauge_;
  obs::Histogram* copied_hist_;
  obs::Histogram* pin_us_;
  obs::FlightRecorder* recorder_;
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_SNAPSHOT_MANAGER_H_
