#ifndef PSPC_SRC_ORDER_HYBRID_ORDER_H_
#define PSPC_SRC_ORDER_HYBRID_ORDER_H_

#include "src/graph/graph.h"
#include "src/order/vertex_order.h"

/// Hybrid vertex ordering (paper §III-G, "Hybrid Vertex Ordering"):
/// vertices with degree above the threshold `delta` form the core-part
/// and are ranked first by descending degree (the social-network
/// scheme); the remaining fringe-part is ranked by the tree-
/// decomposition road-network order computed with core vertices never
/// eliminated. This trades the computational cheapness of the degree
/// order against the index-size quality of the elimination order; the
/// paper settles on delta = 5 empirically (Exp 6 sweeps it).
namespace pspc {

VertexOrder HybridOrder(const Graph& graph, VertexId delta);

/// The paper's empirically chosen default threshold (Exp 6).
inline constexpr VertexId kDefaultHybridDelta = 5;

}  // namespace pspc

#endif  // PSPC_SRC_ORDER_HYBRID_ORDER_H_
