#pragma once
#include "src/common/mutex.h"

class Worker {
 public:
  void Drain();
  void Helper() REQUIRES(mu_);

 private:
  spc::Mutex mu_;
  int work_ = 0;
};
