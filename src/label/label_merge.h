#ifndef PSPC_SRC_LABEL_LABEL_MERGE_H_
#define PSPC_SRC_LABEL_LABEL_MERGE_H_

#include <span>

#include "src/common/saturating.h"
#include "src/common/types.h"
#include "src/label/label_entry.h"

/// The 2-hop SPC query kernel (paper Equations (1) and (2)), factored
/// out of `SpcIndex` so that every label container — the immutable CSR
/// index and the dynamic overlay view — answers queries through the
/// identical sorted-merge code path.
namespace pspc {

/// Merges two rank-sorted label lists: keeps the common hubs minimizing
/// `dist(s,h) + dist(h,t)` and sums `count(s,h) * count(h,t)` over
/// them. `(kInfSpcDistance, 0)` when the lists share no hub. The caller
/// handles the `s == t` case.
inline SpcResult MergeLabelCounts(std::span<const LabelEntry> ls,
                                  std::span<const LabelEntry> lt) {
  uint32_t best = kInfSpcDistance;
  Count count = 0;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub_rank < lt[j].hub_rank) {
      ++i;
    } else if (ls[i].hub_rank > lt[j].hub_rank) {
      ++j;
    } else {
      const uint32_t d =
          static_cast<uint32_t>(ls[i].dist) + static_cast<uint32_t>(lt[j].dist);
      if (d < best) {
        best = d;
        count = SatMul(ls[i].count, lt[j].count);
      } else if (d == best) {
        count = SatAdd(count, SatMul(ls[i].count, lt[j].count));
      }
      ++i;
      ++j;
    }
  }
  if (best == kInfSpcDistance) return {kInfSpcDistance, 0};
  return {best, count};
}

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_LABEL_MERGE_H_
