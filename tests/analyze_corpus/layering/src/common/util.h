#pragma once
#include "src/serve/engine.h"

inline int Util() { return 1; }
