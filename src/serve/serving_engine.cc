#include "src/serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/obs/metric_names.h"

namespace pspc {

std::string ServingCounters::ToString() const {
  std::ostringstream oss;
  oss << "queries: " << queries_served << " in " << micro_batches
      << " micro-batches\n"
      << "cache:   " << cache_hits << " hits / " << cache_misses
      << " misses\n"
      << "writes:  " << updates_applied << " updates, "
      << generations_published << " generations published\n"
      << "epochs:  " << snapshots_reclaimed << " snapshots reclaimed, "
      << snapshots_retired_pending << " retired pending\n"
      << "publish: " << publish_copied_vertices_total
      << " label chunks copied total, " << publish_copied_vertices_last
      << " on the last publish";
  return oss.str();
}

ServingEngine::ServingEngine(DynamicSpcIndex* index, ServingOptions options)
    : index_(index),
      options_(options),
      num_vertices_(index->NumVertices()),
      num_workers_(options.num_workers > 0
                       ? static_cast<size_t>(options.num_workers)
                       : static_cast<size_t>(MaxThreads())),
      snapshots_(IndexSnapshot::Capture(*index), options.metrics,
                 options.flight_recorder),
      queue_(options.queue_capacity),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      published_generation_(index->Generation()),
      sampler_(options.trace_sample_every_n, options.trace_seed),
      traces_(options.slow_trace_capacity, options.slow_trace_us),
      update_traces_(options.update_trace_capacity) {
  BindMetrics(index->Generation());
  if (options_.enable_compaction) {
    // Brief writer scope so the GUARDED_BY holds; no worker or
    // compaction thread exists yet, so this never contends.
    spc::MutexLock lock(writer_mu_);
    compactor_ =
        std::make_unique<OverlayCompactor>(index_, options_.compaction);
  }
  StartWorkers();
  if (options_.enable_compaction) {
    compaction_thread_ = std::thread([this] { CompactionLoop(); });
  }
}

ServingEngine::ServingEngine(DynamicDspcIndex* index, ServingOptions options)
    : directed_index_(index),
      options_(options),
      num_vertices_(index->NumVertices()),
      num_workers_(options.num_workers > 0
                       ? static_cast<size_t>(options.num_workers)
                       : static_cast<size_t>(MaxThreads())),
      snapshots_(IndexSnapshot::Capture(*index), options.metrics,
                 options.flight_recorder),
      queue_(options.queue_capacity),
      // Ordered-pair keys: directed SPC(s -> t) must never be answered
      // from a cached SPC(t -> s).
      cache_(options.cache_shards, options.cache_capacity_per_shard,
             /*symmetric=*/false),
      published_generation_(index->Generation()),
      sampler_(options.trace_sample_every_n, options.trace_seed),
      traces_(options.slow_trace_capacity, options.slow_trace_us),
      update_traces_(options.update_trace_capacity) {
  BindMetrics(index->Generation());
  StartWorkers();
}

void ServingEngine::BindMetrics(uint64_t generation) {
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : &obs::MetricsRegistry::Global();
  queries_total_ = metrics_->GetCounter(obs::kServeQueriesTotal);
  micro_batches_total_ = metrics_->GetCounter(obs::kServeMicroBatchesTotal);
  cache_hits_total_ = metrics_->GetCounter(obs::kServeCacheHitsTotal);
  cache_misses_total_ = metrics_->GetCounter(obs::kServeCacheMissesTotal);
  updates_applied_total_ =
      metrics_->GetCounter(obs::kServeUpdatesAppliedTotal);
  generations_published_total_ =
      metrics_->GetCounter(obs::kServeGenerationsPublishedTotal);
  traces_sampled_total_ = metrics_->GetCounter(obs::kServeTracesSampledTotal);
  traces_slow_total_ = metrics_->GetCounter(obs::kServeTracesSlowTotal);
  published_generation_gauge_ =
      metrics_->GetGauge(obs::kServePublishedGeneration);
  query_latency_us_ = metrics_->GetHistogram(obs::kServeQueryLatencyUs);
  query_latency_cache_hit_us_ =
      metrics_->GetHistogram(obs::kServeQueryLatencyCacheHitUs);
  query_latency_merge_us_ =
      metrics_->GetHistogram(obs::kServeQueryLatencyMergeUs);
  queue_wait_us_ = metrics_->GetHistogram(obs::kServeQueueWaitUs);
  micro_batch_size_ = metrics_->GetHistogram(obs::kServeMicroBatchSize);
  update_latency_us_ = metrics_->GetHistogram(obs::kServeUpdateLatencyUs);
  publish_us_ = metrics_->GetHistogram(obs::kServePublishUs);
  label_bytes_merged_total_ =
      metrics_->GetCounter(obs::kServeLabelBytesMergedTotal);
  label_bytes_per_query_ =
      metrics_->GetHistogram(obs::kServeLabelBytesPerQuery);
  compaction_steps_total_ =
      metrics_->GetCounter(obs::kServeCompactionStepsTotal);
  compaction_chunks_packed_total_ =
      metrics_->GetCounter(obs::kServeCompactionChunksPackedTotal);
  compaction_folds_total_ =
      metrics_->GetCounter(obs::kServeCompactionFoldsTotal);
  compaction_entries_pruned_total_ =
      metrics_->GetCounter(obs::kServeCompactionEntriesPrunedTotal);
  compaction_step_us_ = metrics_->GetHistogram(obs::kServeCompactionStepUs);
  published_generation_gauge_->Set(static_cast<int64_t>(generation));
  recorder_ = options_.flight_recorder != nullptr
                  ? options_.flight_recorder
                  : &obs::FlightRecorder::Global();
  queue_depth_gauge_ = metrics_->GetGauge(obs::kServeQueueDepth);
  queue_capacity_gauge_ = metrics_->GetGauge(obs::kServeQueueCapacity);
  queue_capacity_gauge_->Set(static_cast<int64_t>(queue_.Capacity()));
  // Wired before StartWorkers spawns any consumer, so the pointer is
  // published to the worker threads by thread creation.
  queue_.BindDepthGauge(queue_depth_gauge_);
}

void ServingEngine::StartWorkers() {
  if (num_workers_ == 0) num_workers_ = 1;
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() { Stop(); }

bool ServingEngine::Enqueue(ServeRequest request) {
  // relaxed: the increment only has to precede the request becoming
  // visible to workers, which the queue's lock provides; the drain
  // handshake is the acq_rel fetch_sub in FinishRequests.
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.Push(std::move(request))) {
    FinishRequests(1);
    return false;
  }
  return true;
}

void ServingEngine::FinishRequests(size_t n) {
  if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    spc::MutexLock lock(drain_mu_);
    drain_cv_.NotifyAll();
  }
}

void ServingEngine::AttachTrace(ServeRequest* request) {
  auto trace = std::make_shared<obs::QueryTrace>();
  // relaxed: unique-id draw; only atomicity matters.
  trace->trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  trace->s = request->s;
  trace->t = request->t;
  trace->enqueue_ns = request->enqueue_ns;
  request->trace = std::move(trace);
  traces_sampled_total_->Increment();
}

std::future<SpcResult> ServingEngine::Submit(VertexId s, VertexId t) {
  PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                 "query (" << s << "," << t << ") out of range");
  auto ticket = std::make_shared<SingleTicket>();
  std::future<SpcResult> future = ticket->promise.get_future();
  ServeRequest request;
  request.s = s;
  request.t = t;
  request.enqueue_ns = obs::TraceNowNs();
  request.single = std::move(ticket);
  if (sampler_.Sample()) AttachTrace(&request);
  PSPC_CHECK_MSG(Enqueue(std::move(request)), "Submit after Stop");
  return future;
}

std::future<std::vector<SpcResult>> ServingEngine::SubmitBatch(
    const QueryBatch& batch) {
  auto ticket = std::make_shared<BatchTicket>(batch.size());
  std::future<std::vector<SpcResult>> future = ticket->promise.get_future();
  if (batch.empty()) {
    ticket->promise.set_value({});
    return future;
  }
  std::vector<ServeRequest> requests;
  requests.reserve(batch.size());
  // One clock read for the whole submission: the batch enqueues as a
  // unit, so its requests share the instant.
  const int64_t enqueue_ns = obs::TraceNowNs();
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto [s, t] = batch[i];
    PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                   "query (" << s << "," << t << ") out of range");
    ServeRequest request;
    request.s = s;
    request.t = t;
    request.pos = static_cast<uint32_t>(i);
    request.enqueue_ns = enqueue_ns;
    request.batch = ticket;
    if (sampler_.Sample()) AttachTrace(&request);
    requests.push_back(std::move(request));
  }
  // relaxed: as in Enqueue — queue lock publishes, FinishRequests'
  // acq_rel decrement is the drain handshake.
  pending_.fetch_add(requests.size(), std::memory_order_relaxed);
  const size_t pushed = queue_.PushAll(&requests);
  if (pushed < requests.size()) {
    FinishRequests(requests.size() - pushed);
    PSPC_CHECK_MSG(false, "SubmitBatch after Stop");
  }
  return future;
}

Status ServingEngine::ApplyUpdates(const EdgeUpdateBatch& batch) {
  spc::MutexLock lock(writer_mu_);
  const bool directed = directed_index_ != nullptr;
  const DynamicStats& stats =
      directed ? directed_index_->Stats() : index_->Stats();
  const uint64_t applied_before =
      stats.insertions_applied + stats.deletions_applied;
  obs::UpdateTrace update_trace;
  // relaxed: unique-id draw; only atomicity matters.
  update_trace.batch_id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  update_trace.submitted = batch.Size();
  const int64_t apply_start_ns = obs::TraceNowNs();
  update_trace.start_ns = apply_start_ns;
  const Status status = directed ? directed_index_->ApplyBatch(batch)
                                 : index_->ApplyBatch(batch);
  update_latency_us_->Record(
      static_cast<double>(obs::TraceNowNs() - apply_start_ns) * 1e-3);
  const uint64_t applied =
      stats.insertions_applied + stats.deletions_applied - applied_before;
  // relaxed: Counters() tally; writer_mu_ serializes writers and
  // pollers tolerate trailing reads.
  updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  updates_applied_total_->Increment(applied);
  update_trace.ok = status.ok();
  update_trace.applied = applied;
  if (status.ok()) {
    // The index stamps per-batch plan/repair wall costs into its stats
    // at the ApplyBatch tail; same thread, same writer_mu_ scope.
    update_trace.plan_us = stats.last_plan_us;
    update_trace.repair_us = stats.last_repair_us;
  }
  // ApplyBatch is atomic and bumps the generation once per batch, so
  // this publishes exactly one snapshot for a batch that changed
  // anything and none for a rejected or fully coalesced one.
  const uint64_t generation =
      directed ? directed_index_->Generation() : index_->Generation();
  if (generation != published_generation_) {
    const int64_t publish_start_ns = obs::TraceNowNs();
    snapshots_.Publish(directed ? IndexSnapshot::Capture(*directed_index_)
                                : IndexSnapshot::Capture(*index_));
    const double publish_micros =
        static_cast<double>(obs::TraceNowNs() - publish_start_ns) * 1e-3;
    publish_us_->Record(publish_micros);
    update_trace.reclaim_us = snapshots_.LastReclaimMicros();
    update_trace.publish_us = publish_micros - update_trace.reclaim_us;
    update_trace.generation = generation;
    published_generation_ = generation;
    // relaxed: Counters() tally; publication itself is ordered by the
    // snapshot manager's release store.
    publishes_.fetch_add(1, std::memory_order_relaxed);
    generations_published_total_->Increment();
    published_generation_gauge_->Set(static_cast<int64_t>(generation));
  }
  update_trace.total_us =
      static_cast<double>(obs::TraceNowNs() - apply_start_ns) * 1e-3;
  update_traces_.Record(update_trace);
  recorder_->Record(obs::FlightEventKind::kBatchApply,
                    update_trace.batch_id, update_trace.submitted, applied,
                    static_cast<uint64_t>(update_trace.total_us));
  return status;
}

Status ServingEngine::ApplyUpdate(const EdgeUpdate& update) {
  EdgeUpdateBatch batch;
  batch.Add(update);
  return ApplyUpdates(batch);
}

void ServingEngine::Drain() {
  spc::MutexLock lock(drain_mu_);
  // acquire: pairs with the acq_rel fetch_sub in FinishRequests so a
  // drained caller observes every completed request's side effects.
  while (pending_.load(std::memory_order_acquire) != 0) {
    drain_cv_.Wait(drain_mu_);
  }
}

void ServingEngine::Stop() {
  if (stopped_.exchange(true)) return;
  StopCompaction();
  Drain();
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

void ServingEngine::StopCompaction() {
  if (!compaction_thread_.joinable()) return;
  {
    spc::MutexLock lock(compaction_mu_);
    compaction_stop_ = true;
    compaction_cv_.NotifyAll();
  }
  compaction_thread_.join();
}

void ServingEngine::CompactionLoop() {
  for (;;) {
    {
      spc::MutexLock lock(compaction_mu_);
      if (!compaction_stop_) {
        compaction_cv_.WaitFor(
            compaction_mu_,
            std::chrono::milliseconds(options_.compaction_interval_ms));
      }
      if (compaction_stop_) return;
    }
    CompactOnce();
  }
}

bool ServingEngine::CompactOnce() {
  spc::MutexLock lock(writer_mu_);
  if (compactor_ == nullptr) return false;
  const int64_t step_start_ns = obs::TraceNowNs();
  const CompactionStats before = compactor_->Stats();
  const size_t packed = compactor_->PackStep();
  const bool folded = compactor_->FoldIfStale();
  compaction_steps_total_->Increment();
  compaction_chunks_packed_total_->Increment(packed);
  if (folded) {
    compaction_folds_total_->Increment();
    compaction_entries_pruned_total_->Increment(
        compactor_->Stats().entries_pruned - before.entries_pruned);
  }
  const bool changed = packed > 0 || folded;
  if (changed) {
    // Publish so readers pick up the packed chunks (and, after a fold,
    // the fresh base). A pack-only step keeps the index generation —
    // results are bit-identical, so cached entries tagged with it stay
    // valid — which is why published_generation_ bookkeeping below only
    // fires for folds.
    const int64_t publish_start_ns = obs::TraceNowNs();
    snapshots_.Publish(IndexSnapshot::Capture(*index_));
    publish_us_->Record(
        static_cast<double>(obs::TraceNowNs() - publish_start_ns) * 1e-3);
    const uint64_t generation = index_->Generation();
    if (generation != published_generation_) {
      published_generation_ = generation;
      // relaxed: Counters() tally, as in ApplyUpdates.
      publishes_.fetch_add(1, std::memory_order_relaxed);
      generations_published_total_->Increment();
      published_generation_gauge_->Set(static_cast<int64_t>(generation));
    }
  }
  compaction_step_us_->Record(
      static_cast<double>(obs::TraceNowNs() - step_start_ns) * 1e-3);
  return changed;
}

CompactionStats ServingEngine::CompactionTotals() {
  spc::MutexLock lock(writer_mu_);
  return compactor_ != nullptr ? compactor_->Stats() : CompactionStats{};
}

ServingCounters ServingEngine::Counters() const {
  ServingCounters counters;
  // relaxed throughout: point-in-time statistics snapshot; fields are
  // independent tallies, no cross-field consistency is promised.
  counters.queries_served = queries_served_.load(std::memory_order_relaxed);
  counters.micro_batches = micro_batches_.load(std::memory_order_relaxed);
  counters.cache_hits = cache_.Hits();
  counters.cache_misses = cache_.Misses();
  counters.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  counters.generations_published =
      publishes_.load(std::memory_order_relaxed);  // relaxed: as above.
  counters.snapshots_reclaimed = snapshots_.ReclaimedCount();
  counters.snapshots_retired_pending = snapshots_.RetiredCount();
  counters.publish_copied_vertices_last =
      snapshots_.LastPublishCopiedVertices();
  counters.publish_copied_vertices_total =
      snapshots_.TotalPublishCopiedVertices();
  return counters;
}

void ServingEngine::WorkerLoop() {
  std::vector<ServeRequest> local;
  local.reserve(options_.max_batch);
  for (;;) {
    local.clear();
    const size_t taken =
        queue_.PopBatch(&local, options_.max_batch, num_workers_);
    if (taken == 0) return;  // closed and drained

    // Announce new queue high-water marks to the flight recorder in
    // capacity/8 steps (one relaxed load per micro-batch otherwise).
    {
      const size_t high_water = queue_.HighWater();
      // relaxed: dedup marker for flight events; the CAS only elects
      // one reporter per new watermark, no payload rides on it.
      size_t reported = reported_high_water_.load(std::memory_order_relaxed);
      const size_t step = std::max<size_t>(1, queue_.Capacity() / 8);
      if (high_water >= reported + step &&
          reported_high_water_.compare_exchange_strong(
              reported, high_water, std::memory_order_relaxed)) {
        recorder_->Record(obs::FlightEventKind::kQueueHighWater, high_water,
                          queue_.Capacity());
      }
    }

    // One clock read covers the whole dequeue: the micro-batch left
    // the queue as a unit, so its queue waits share the instant.
    const int64_t dequeue_ns = obs::TraceNowNs();

    // One epoch pin covers the whole micro-batch: the snapshot (and
    // its generation, for cache tagging) is fixed across it.
    SnapshotRef snapshot = snapshots_.Acquire();
    const uint64_t generation = snapshot->Generation();
    uint64_t hits = 0;
    uint64_t merged_bytes_batch = 0;
    for (ServeRequest& request : local) {
      queue_wait_us_->Record(
          static_cast<double>(dequeue_ns - request.enqueue_ns) * 1e-3);
      SpcResult result;
      bool cache_hit;
      {
        // Stamps merge_done_ns on a traced request (cache consult /
        // label merge finished); no-op otherwise.
        obs::TraceSpan merge_span(request.trace.get(),
                                  &obs::QueryTrace::merge_done_ns);
        cache_hit = cache_.Lookup(generation, request.s, request.t, &result);
        if (!cache_hit) {
          size_t merged_bytes = 0;
          result = snapshot->QueryMeasured(request.s, request.t, &merged_bytes);
          cache_.Insert(generation, request.s, request.t, result);
          label_bytes_per_query_->Record(static_cast<double>(merged_bytes));
          merged_bytes_batch += merged_bytes;
        }
      }
      hits += cache_hit ? 1 : 0;
      if (request.single != nullptr) {
        request.single->promise.set_value(result);
      } else {
        BatchTicket& ticket = *request.batch;
        ticket.results[request.pos] = result;
        if (ticket.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ticket.promise.set_value(std::move(ticket.results));
        }
      }
      const int64_t reply_ns = obs::TraceNowNs();
      const double total_us =
          static_cast<double>(reply_ns - request.enqueue_ns) * 1e-3;
      query_latency_us_->Record(total_us);
      (cache_hit ? query_latency_cache_hit_us_ : query_latency_merge_us_)
          ->Record(total_us);
      if (request.trace != nullptr) {
        obs::QueryTrace& trace = *request.trace;
        trace.generation = generation;
        trace.cache_hit = cache_hit;
        trace.dequeue_ns = dequeue_ns;
        trace.reply_ns = reply_ns;
        if (traces_.Record(trace)) traces_slow_total_->Increment();
      }
    }
    // relaxed: Counters() tallies; exactness is only promised once
    // quiesced (Drain's acq_rel handshake).
    queries_served_.fetch_add(taken, std::memory_order_relaxed);
    micro_batches_.fetch_add(1, std::memory_order_relaxed);
    queries_total_->Increment(taken);
    micro_batches_total_->Increment();
    cache_hits_total_->Increment(hits);
    cache_misses_total_->Increment(taken - hits);
    label_bytes_merged_total_->Increment(merged_bytes_batch);
    micro_batch_size_->Record(static_cast<double>(taken));
    FinishRequests(taken);
  }
}

}  // namespace pspc
