#include "src/baseline/bfs_spc.h"

#include "src/common/logging.h"
#include "src/common/saturating.h"

namespace pspc {

SingleSourceSpc BfsSpcFromSource(const Graph& graph, VertexId source) {
  PSPC_CHECK(source < graph.NumVertices());
  SingleSourceSpc result;
  result.distance.assign(graph.NumVertices(), kInfDistance);
  result.count.assign(graph.NumVertices(), 0);
  result.distance[source] = 0;
  result.count[source] = 1;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  Distance d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : graph.Neighbors(u)) {
        if (result.distance[v] == kInfDistance) {
          result.distance[v] = d;
          next.push_back(v);
        }
        if (result.distance[v] == d) {
          result.count[v] = SatAdd(result.count[v], result.count[u]);
        }
      }
    }
    frontier.swap(next);
  }
  return result;
}

SpcResult BfsSpcPair(const Graph& graph, VertexId s, VertexId t) {
  PSPC_CHECK(s < graph.NumVertices() && t < graph.NumVertices());
  const SingleSourceSpc sspc = BfsSpcFromSource(graph, s);
  return SpcResult{sspc.distance[t] == kInfDistance
                       ? kInfSpcDistance
                       : static_cast<uint32_t>(sspc.distance[t]),
                   sspc.count[t]};
}

}  // namespace pspc
