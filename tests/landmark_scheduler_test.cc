#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/landmark_filter.h"
#include "src/core/scheduler.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/order/degree_order.h"
#include "src/order/vertex_order.h"

namespace pspc {
namespace {

// --------------------------------------------------- LandmarkFilter --

TEST(LandmarkFilterTest, EmptyFilterPrunesNothing) {
  LandmarkFilter filter;
  EXPECT_EQ(filter.NumLandmarks(), 0u);
  EXPECT_FALSE(filter.Prunes(0, 1, 5));
}

TEST(LandmarkFilterTest, NeverPrunesTrueShortestCandidates) {
  // Soundness: Prunes(u, w, d) = true must imply dist(u, w) < d.
  const Graph g = GenerateErdosRenyi(60, 150, 3);
  const VertexOrder order = DegreeOrder(g);
  const LandmarkFilter filter(g, order, 8, 2);
  for (VertexId u = 0; u < 60; ++u) {
    const auto dist = BfsDistances(g, u);
    for (VertexId w = 0; w < 60; ++w) {
      if (dist[w] == kInfDistance) continue;
      EXPECT_FALSE(filter.Prunes(u, w, dist[w]))
          << "filter claimed dist(" << u << "," << w << ") < " << dist[w];
    }
  }
}

TEST(LandmarkFilterTest, ExactWhenHubIsLandmark) {
  // If w is a landmark, dist(w,w) = 0 makes the test exact: any
  // candidate distance above the true one is pruned.
  const Graph g = GenerateBarabasiAlbert(80, 3, 5);
  const VertexOrder order = DegreeOrder(g);
  const LandmarkFilter filter(g, order, 4, 2);
  const VertexId landmark = order.VertexAt(0);
  const auto dist = BfsDistances(g, landmark);
  for (VertexId u = 0; u < 80; ++u) {
    if (dist[u] == kInfDistance || u == landmark) continue;
    EXPECT_TRUE(filter.Prunes(u, landmark, dist[u] + 1));
    EXPECT_FALSE(filter.Prunes(u, landmark, dist[u]));
  }
}

TEST(LandmarkFilterTest, CapsAtVertexCount) {
  const Graph g = GeneratePath(5);
  const LandmarkFilter filter(g, IdentityOrder(5), 100, 1);
  EXPECT_EQ(filter.NumLandmarks(), 5u);
  EXPECT_EQ(filter.SizeBytes(), 5u * 5u * sizeof(Distance));
}

TEST(LandmarkFilterTest, HandlesDisconnectedPairsSafely) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  const LandmarkFilter filter(g, IdentityOrder(4), 4, 1);
  // No landmark connects the components; no false pruning.
  EXPECT_FALSE(filter.Prunes(0, 2, 10));
}

// -------------------------------------------------------- Scheduler --

std::vector<Rank> IdentityRanks(VertexId n) {
  std::vector<Rank> ranks(n);
  for (VertexId v = 0; v < n; ++v) ranks[v] = v;
  return ranks;
}

TEST(SchedulerTest, StaticPlanKeepsNodeOrder) {
  const std::vector<VertexId> active{4, 1, 3};
  const auto ranks = IdentityRanks(5);
  const auto plan =
      PlanIteration(ScheduleKind::kStatic, active, {}, ranks);
  EXPECT_FALSE(plan.dynamic);
  EXPECT_EQ(plan.sequence, (std::vector<VertexId>{1, 3, 4}));
}

TEST(SchedulerTest, DynamicPlanKeepsNodeOrder) {
  const std::vector<VertexId> active{2, 0};
  const auto plan =
      PlanIteration(ScheduleKind::kDynamic, active, {}, IdentityRanks(3));
  EXPECT_TRUE(plan.dynamic);
  EXPECT_EQ(plan.sequence, (std::vector<VertexId>{0, 2}));
}

TEST(SchedulerTest, CostAwareSortsHeaviestFirst) {
  const std::vector<VertexId> active{0, 1, 2, 3};
  const std::vector<uint64_t> costs{5, 50, 1, 50};
  const auto plan =
      PlanIteration(ScheduleKind::kCostAware, active, costs, IdentityRanks(4));
  EXPECT_TRUE(plan.dynamic);
  // 50-cost vertices first (rank tie-break: 1 before 3), then 5, then 1.
  EXPECT_EQ(plan.sequence, (std::vector<VertexId>{1, 3, 0, 2}));
}

TEST(SchedulerTest, PlansCoverActiveSetExactly) {
  const std::vector<VertexId> active{7, 2, 9, 4};
  const std::vector<uint64_t> costs{1, 2, 3, 4};
  for (ScheduleKind kind : {ScheduleKind::kStatic, ScheduleKind::kDynamic,
                            ScheduleKind::kCostAware}) {
    const auto plan = PlanIteration(kind, active, costs, IdentityRanks(10));
    std::multiset<VertexId> expect(active.begin(), active.end());
    std::multiset<VertexId> got(plan.sequence.begin(), plan.sequence.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(SchedulerTest, EmptyActiveSet) {
  const auto plan =
      PlanIteration(ScheduleKind::kCostAware, {}, {}, IdentityRanks(4));
  EXPECT_TRUE(plan.sequence.empty());
}

}  // namespace
}  // namespace pspc
