#ifndef PSPC_SRC_OBS_HEALTH_H_
#define PSPC_SRC_OBS_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

/// Health watchdog: a rule engine evaluated over metrics-registry
/// deltas. Every rule reads only registry counters/gauges (never the
/// serving objects directly), so (a) the watchdog composes with any
/// instrumented engine without new plumbing, and (b) tests drive the
/// rules by synthesizing registry states. A periodic thread (or a
/// manual `Evaluate()` when `interval_ms == 0`) ticks the rules; each
/// yields OK / DEGRADED / UNHEALTHY with a human-readable reason, the
/// overall status is the worst rule, and `/healthz` serves it as
/// 200/503 + reason.
///
/// Rules (thresholds in `HealthOptions`):
///   - `queue_saturation`: request-queue fill ratio
///     (serve.queue_depth / serve.queue_capacity) above the degraded
///     bar; persistently above the unhealthy bar for N ticks.
///   - `reclaim_backlog`: serve.snapshots_retired_pending growing
///     across consecutive ticks while above a floor — a pinned reader
///     (or a reclaim bug) is holding retired generations alive.
///   - `epoch_overflow`: serve.epoch_overflow_pins_total still
///     increasing tick over tick — sustained reader-slot
///     oversubscription.
///   - `publish_stall`: serve.updates_applied_total advancing while
///     serve.generations_published_total is flat — updates are being
///     accepted but readers cannot see them.
///   - `rebuild_in_progress`: dynamic.rebuild_in_progress set — the
///     index is inside a staleness rebuild (DEGRADED only; expected,
///     but worth surfacing).
///
/// On any transition to UNHEALTHY the watchdog assembles a diagnostic
/// bundle — health report + full metrics snapshot + flight-recorder
/// ring + slow-query and update-batch traces — keeps it readable via
/// `LastBundle()`, and writes it to `bundle_path` when configured.
namespace pspc {
namespace obs {

enum class HealthStatus : uint32_t { kOk = 0, kDegraded = 1, kUnhealthy = 2 };

std::string_view HealthStatusName(HealthStatus status);

/// Stable rule identifiers (also the `rule_id` payload of
/// kHealthTransition flight events).
enum class HealthRuleId : uint32_t {
  kNone = 0,
  kQueueSaturation = 1,
  kReclaimBacklog = 2,
  kEpochOverflow = 3,
  kPublishStall = 4,
  kRebuildInProgress = 5,
};

std::string_view HealthRuleName(HealthRuleId id);

struct HealthRuleState {
  HealthRuleId id = HealthRuleId::kNone;
  HealthStatus status = HealthStatus::kOk;
  std::string reason;         ///< human-readable, empty when OK
  uint64_t firing_ticks = 0;  ///< consecutive ticks the condition held
};

struct HealthReport {
  HealthStatus status = HealthStatus::kOk;
  HealthRuleId worst_rule = HealthRuleId::kNone;
  std::string reason;  ///< worst rule's reason, or "ok"
  uint64_t tick = 0;   ///< evaluations so far (0 = never evaluated)
  std::vector<HealthRuleState> rules;

  std::string ToJson() const;
};

struct HealthOptions {
  MetricsRegistry* metrics = nullptr;   ///< null selects Global()
  FlightRecorder* recorder = nullptr;   ///< null selects Global()
  const TraceCollector* traces = nullptr;         ///< bundle section
  const UpdateTraceLog* update_traces = nullptr;  ///< bundle section

  /// Watchdog tick period. 0 disables the thread: callers (tests)
  /// drive `Evaluate()` manually.
  uint64_t interval_ms = 100;

  /// Written on each transition to UNHEALTHY; empty keeps the bundle
  /// in memory only (`LastBundle()`).
  std::string bundle_path;

  // -- thresholds -----------------------------------------------------
  double queue_degraded_fill = 0.75;
  double queue_unhealthy_fill = 0.95;
  uint64_t queue_unhealthy_ticks = 3;   ///< consecutive ticks above bar
  uint64_t reclaim_backlog_floor = 4;   ///< ignore tiny backlogs
  uint64_t reclaim_degraded_ticks = 2;  ///< consecutive growth ticks
  uint64_t reclaim_unhealthy_ticks = 4;
  uint64_t overflow_degraded_ticks = 2;
  uint64_t overflow_unhealthy_ticks = 5;
  uint64_t publish_stall_degraded_ticks = 3;
  uint64_t publish_stall_unhealthy_ticks = 6;
};

class HealthWatchdog {
 public:
  explicit HealthWatchdog(const HealthOptions& options = {});
  ~HealthWatchdog();

  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  /// Spawns the watchdog thread (no-op when `interval_ms == 0`).
  void Start() EXCLUDES(thread_mu_);
  void Stop() EXCLUDES(thread_mu_);

  /// One rule-engine tick; also what the thread calls. Serialized
  /// internally, so manual calls compose with the thread.
  HealthReport Evaluate() EXCLUDES(mu_);

  /// Last report (a default OK report before the first tick).
  HealthReport Current() const EXCLUDES(mu_);

  /// Completed status transitions (mirrors obs.health_transitions_total).
  uint64_t Transitions() const {
    // relaxed: monotonic tally mirrored into the registry counter.
    return transitions_.load(std::memory_order_relaxed);
  }

  /// Most recent UNHEALTHY diagnostic bundle; empty if none yet.
  std::string LastBundle() const EXCLUDES(mu_);

  /// Assembles a diagnostic bundle on demand (also used for the
  /// operator-requested dump at process exit).
  std::string MakeBundle(const std::string& reason) const EXCLUDES(mu_);

  const HealthOptions& options() const { return options_; }

 private:
  void RunLoop();

  HealthOptions options_;
  MetricsRegistry* metrics_;
  FlightRecorder* recorder_;
  Gauge* status_gauge_;
  Counter* transitions_counter_;

  std::atomic<uint64_t> transitions_{0};

  mutable spc::Mutex mu_;  // guards the report + rule state below
  HealthReport current_ GUARDED_BY(mu_);
  std::string last_bundle_ GUARDED_BY(mu_);
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  // Per-rule consecutive-fire counters and previous-tick readings.
  uint64_t queue_ticks_ GUARDED_BY(mu_) = 0;
  uint64_t reclaim_ticks_ GUARDED_BY(mu_) = 0;
  uint64_t overflow_ticks_ GUARDED_BY(mu_) = 0;
  uint64_t stall_ticks_ GUARDED_BY(mu_) = 0;
  int64_t prev_retired_ GUARDED_BY(mu_) = 0;
  uint64_t prev_overflow_total_ GUARDED_BY(mu_) = 0;
  uint64_t prev_applied_total_ GUARDED_BY(mu_) = 0;
  uint64_t prev_published_total_ GUARDED_BY(mu_) = 0;
  bool have_prev_ GUARDED_BY(mu_) = false;

  spc::Mutex thread_mu_;
  spc::CondVar cv_;
  bool stop_requested_ GUARDED_BY(thread_mu_) = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_HEALTH_H_
