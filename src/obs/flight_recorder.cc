#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <iterator>

#include "src/common/json_writer.h"
#include "src/obs/trace.h"

namespace pspc {
namespace obs {

namespace {

struct KindInfo {
  std::string_view name;
  std::string_view arg_names[4];
};

// Indexed by FlightEventKind. Unused trailing args render as nothing
// (empty name = stop).
constexpr KindInfo kKindInfo[] = {
    {"none", {}},
    {"publish", {"generation", "copied_vertices", "retired_pending", ""}},
    {"reclaim", {"freed", "remaining", "micros", ""}},
    {"rebuild_start", {"generation", "overlay_entries", "", ""}},
    {"rebuild_end", {"generation", "micros", "base_entries", ""}},
    {"batch_apply", {"batch_id", "submitted", "applied", "micros"}},
    {"health_transition", {"from_status", "to_status", "rule_id", ""}},
    {"queue_high_water", {"depth", "capacity", "", ""}},
    {"epoch_overflow_pin", {"active_overflow_pins", "epoch", "", ""}},
};

const KindInfo& InfoFor(FlightEventKind kind) {
  const auto index = static_cast<size_t>(kind);
  if (index >= std::size(kKindInfo)) return kKindInfo[0];
  return kKindInfo[index];
}

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view FlightEventKindName(FlightEventKind kind) {
  return InfoFor(kind).name;
}

std::string FlightEvent::ToJson() const {
  const KindInfo& info = InfoFor(kind);
  benchjson::Object object;
  object.Add("seq", seq);
  object.Add("ns", ns);
  object.Add("kind", std::string(info.name));
  for (size_t i = 0; i < 4; ++i) {
    if (info.arg_names[i].empty()) break;
    object.Add(std::string(info.arg_names[i]), args[i]);
  }
  return object.Serialize();
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const global = new FlightRecorder();
  return *global;
}

void FlightRecorder::Record(FlightEventKind kind, uint64_t a0, uint64_t a1,
                            uint64_t a2, uint64_t a3) {
  // relaxed: slot reservation only needs atomicity; the seqlock
  // version protocol below carries the ordering.
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (capacity_ - 1)];
  // Seqlock write: odd version while the payload is in flux, even
  // version (release) to commit. Payload stores are relaxed — the
  // release on the final version store orders them for any reader
  // whose acquire load observes it.
  slot.version.fetch_add(1, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.ns.store(TraceNowNs(), std::memory_order_relaxed);
  slot.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  slot.args[0].store(a0, std::memory_order_relaxed);
  slot.args[1].store(a1, std::memory_order_relaxed);
  slot.args[2].store(a2, std::memory_order_relaxed);
  slot.args[3].store(a3, std::memory_order_relaxed);
  slot.version.fetch_add(1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> events;
  events.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const uint64_t before = slot.version.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) break;  // unwritten / in flux
      FlightEvent event;
      event.seq = slot.seq.load(std::memory_order_relaxed);
      event.ns = slot.ns.load(std::memory_order_relaxed);
      event.kind = static_cast<FlightEventKind>(
          slot.kind.load(std::memory_order_relaxed));
      for (size_t a = 0; a < 4; ++a) {
        // relaxed: seqlock payload read, bracketed by the acquire
        // load above and the acquire fence below.
        event.args[a] = slot.args[a].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      // relaxed: the fence above pairs the recheck with the writer's
      // release commit; a changed version means a torn copy.
      if (slot.version.load(std::memory_order_relaxed) != before) {
        continue;  // torn copy: the writer moved under us, retry
      }
      events.push_back(event);
      break;
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

std::string FlightRecorder::ToJson() const {
  benchjson::Object object;
  object.Add("capacity", static_cast<uint64_t>(capacity_));
  object.Add("recorded", EventsRecorded());
  benchjson::Array array;
  for (const FlightEvent& event : Events()) {
    array.AddRaw(event.ToJson());
  }
  object.AddRaw("events", array.Serialize());
  return object.Serialize();
}

}  // namespace obs
}  // namespace pspc
