#ifndef PSPC_SRC_SERVE_CLEAN_HEADER_H_
#define PSPC_SRC_SERVE_CLEAN_HEADER_H_

// Corpus: a canonically guarded header (linted as
// src/serve/clean_header.h) must produce no violations.
inline int Clean() { return 0; }

#endif  // PSPC_SRC_SERVE_CLEAN_HEADER_H_
