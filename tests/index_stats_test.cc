#include <gtest/gtest.h>

#include <numeric>

#include "src/core/pspc_builder.h"
#include "src/graph/generators.h"
#include "src/label/index_stats.h"
#include "src/order/degree_order.h"
#include "src/order/vertex_order.h"

namespace pspc {
namespace {

SpcIndex MakeIndex(const Graph& g) {
  PspcOptions o;
  o.num_landmarks = 4;
  return BuildPspcIndex(g, DegreeOrder(g), o).index;
}

TEST(IndexStatsTest, EmptyIndexProfile) {
  const IndexProfile p = ProfileIndex(SpcIndex());
  EXPECT_EQ(p.total_entries, 0u);
  EXPECT_EQ(p.avg_label_size, 0.0);
}

TEST(IndexStatsTest, StarProfile) {
  const SpcIndex index = MakeIndex(GenerateStar(8));
  const IndexProfile p = ProfileIndex(index);
  EXPECT_EQ(p.total_entries, 17u);  // center 1 + 8 leaves x 2
  EXPECT_EQ(p.max_label_size, 2u);
  EXPECT_EQ(p.min_label_size, 1u);
  // Distances: 9 self entries (d0) + 8 center entries (d1).
  ASSERT_EQ(p.entries_per_distance.size(), 2u);
  EXPECT_EQ(p.entries_per_distance[0], 9u);
  EXPECT_EQ(p.entries_per_distance[1], 8u);
  // The center (rank 0) hub appears in 9 of 17 entries.
  EXPECT_NEAR(p.top1_hub_share, 9.0 / 17.0, 1e-12);
}

TEST(IndexStatsTest, DistanceHistogramSumsToTotal) {
  const SpcIndex index = MakeIndex(GenerateErdosRenyi(80, 200, 3));
  const IndexProfile p = ProfileIndex(index);
  EXPECT_EQ(std::accumulate(p.entries_per_distance.begin(),
                            p.entries_per_distance.end(), size_t{0}),
            p.total_entries);
  EXPECT_EQ(p.total_entries, index.TotalEntries());
  EXPECT_DOUBLE_EQ(p.avg_label_size, index.AverageLabelSize());
}

TEST(IndexStatsTest, HubSharesAreMonotone) {
  const SpcIndex index = MakeIndex(GenerateBarabasiAlbert(120, 3, 5));
  const IndexProfile p = ProfileIndex(index);
  EXPECT_LE(p.top1_hub_share, p.top10_hub_share);
  EXPECT_LE(p.top10_hub_share, p.top100_hub_share);
  EXPECT_LE(p.top100_hub_share, 1.0 + 1e-12);
  // Scale-free + degree order: the top hub carries a visible share —
  // the concentration that justifies landmark filtering.
  EXPECT_GT(p.top1_hub_share, 0.05);
}

TEST(IndexStatsTest, ToStringMentionsKeyFields) {
  const SpcIndex index = MakeIndex(GeneratePath(5));
  const std::string s = ProfileIndex(index).ToString();
  EXPECT_NE(s.find("entries="), std::string::npos);
  EXPECT_NE(s.find("per-distance:"), std::string::npos);
}

}  // namespace
}  // namespace pspc
