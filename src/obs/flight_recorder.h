#ifndef PSPC_SRC_OBS_FLIGHT_RECORDER_H_
#define PSPC_SRC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// Flight recorder: a lock-free bounded ring of structured control-
/// plane events (snapshot publishes, reclaims, rebuild start/end,
/// batch applies, health transitions, queue high-water marks, epoch
/// overflow pins). The hot paths emit events with a couple of relaxed
/// atomic stores; a diagnostic reader (the `/flightrecorder` endpoint
/// or the watchdog's UNHEALTHY bundle dump) reconstructs the most
/// recent `capacity` events without ever blocking a writer.
///
/// Concurrency design — a per-slot seqlock. `Record` claims a slot by
/// one global `fetch_add` on the sequence counter, bumps the slot's
/// version to odd (write in progress), stores the payload with relaxed
/// atomics, then publishes by storing the even version with release
/// order. A reader loads the version (acquire), copies the payload,
/// and re-loads the version: odd or changed means the copy was torn
/// and the slot is discarded. All payload fields are themselves
/// atomics, so writer/reader overlap is a value race the protocol
/// discards, never a data race — the recorder is TSan-clean by
/// construction. A writer lapped by `capacity` newer events while
/// mid-write loses that slot to the newer event (last store wins);
/// with capacity in the hundreds and control-plane event rates this is
/// a non-event, and the reader-side discard keeps it safe regardless.
namespace pspc {
namespace obs {

/// What happened. Keep in sync with `FlightEventKindName` and the
/// per-kind argument names in flight_recorder.cc.
enum class FlightEventKind : uint32_t {
  kNone = 0,           ///< unwritten slot
  kPublish,            ///< generation, copied_vertices, retired_pending
  kReclaim,            ///< freed, remaining, micros
  kRebuildStart,       ///< generation, overlay_entries
  kRebuildEnd,         ///< generation, micros, base_entries
  kBatchApply,         ///< batch_id, submitted, applied, micros
  kHealthTransition,   ///< from_status, to_status, rule_id
  kQueueHighWater,     ///< depth, capacity
  kEpochOverflowPin,   ///< active_overflow_pins, epoch
};

std::string_view FlightEventKindName(FlightEventKind kind);

/// One committed event, as reconstructed by a reader. `seq` is the
/// global emission order (gaps mean the ring wrapped past them or a
/// torn slot was discarded); `ns` is a TraceNowNs() stamp.
struct FlightEvent {
  uint64_t seq = 0;
  int64_t ns = 0;
  FlightEventKind kind = FlightEventKind::kNone;
  uint64_t args[4] = {0, 0, 0, 0};

  /// One-object JSON rendering with per-kind argument names.
  std::string ToJson() const;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit FlightRecorder(size_t capacity = 512);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the instrumented subsystems default to
  /// (never destroyed — instrumented objects may outlive statics).
  static FlightRecorder& Global();

  /// Emits one event. Wait-free: one fetch_add plus a handful of
  /// relaxed stores. Safe from any thread, including hot paths.
  void Record(FlightEventKind kind, uint64_t a0 = 0, uint64_t a1 = 0,
              uint64_t a2 = 0, uint64_t a3 = 0);

  /// Total events ever emitted (>= the ring capacity means the ring
  /// has wrapped and older events were overwritten).
  uint64_t EventsRecorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  size_t Capacity() const { return capacity_; }

  /// Point-in-time copy of the committed ring contents, oldest first
  /// by emission order. Torn slots (concurrent writer) are skipped.
  std::vector<FlightEvent> Events() const;

  /// {"capacity":N,"recorded":N,"events":[...]} — the bundle section.
  std::string ToJson() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> version{0};  // odd = write in progress
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> ns{0};
    std::atomic<uint32_t> kind{0};
    std::atomic<uint64_t> args[4];
  };

  const size_t capacity_;  // power of two
  std::atomic<uint64_t> next_seq_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_FLIGHT_RECORDER_H_
