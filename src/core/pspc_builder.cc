#include "src/core/pspc_builder.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include <omp.h>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/core/landmark_filter.h"
#include "src/core/scheduler.h"
#include "src/label/label_set.h"

namespace pspc {
namespace {

/// Per-thread scratch. The candidate map is an epoch-stamped array over
/// hub ranks (O(1) clear between vertices); tmp_dist materializes the
/// current vertex's labels for the 2-hop pruning query.
struct ThreadScratch {
  std::vector<Count> cand_count;
  std::vector<uint32_t> cand_epoch;
  std::vector<Rank> cand_hubs;
  std::vector<Distance> tmp_dist;
  uint32_t epoch = 0;
  std::vector<LabelEntry> pending;

  size_t candidates = 0;
  size_t pruned_landmark = 0;
  size_t pruned_query = 0;

  void Init(VertexId n) {
    cand_count.assign(n, 0);
    cand_epoch.assign(n, 0);
    tmp_dist.assign(n, kInfDistance);
  }
};

/// Shared state of one construction run.
struct BuildContext {
  const Graph& graph;
  const VertexOrder& order;
  const PspcOptions& options;
  LevelLabelStore store;
  const LandmarkFilter* landmarks = nullptr;  // null: filtering disabled
  std::vector<ThreadScratch> scratch;
  std::vector<std::vector<LabelEntry>> staging;

  BuildContext(const Graph& g, const VertexOrder& o, const PspcOptions& opt,
               int threads)
      : graph(g), order(o), options(opt), store(g.NumVertices()),
        scratch(threads), staging(g.NumVertices()) {
    for (auto& s : scratch) s.Init(g.NumVertices());
  }
};

/// Applies Lemma 4 (+ landmark fast path) to the merged candidates in
/// `s.cand_hubs` and stages the survivors as `L_d(u)`. Candidate hub
/// ranks are sorted first, so staged levels are deterministic.
void PruneAndStage(BuildContext& ctx, ThreadScratch& s, VertexId u,
                   Distance d) {
  std::sort(s.cand_hubs.begin(), s.cand_hubs.end());
  const auto my_labels = ctx.store.Entries(u);
  for (const LabelEntry& e : my_labels) s.tmp_dist[e.hub_rank] = e.dist;

  s.pending.clear();
  for (Rank hub_rank : s.cand_hubs) {
    ++s.candidates;
    const VertexId w = ctx.order.VertexAt(hub_rank);
    if (ctx.landmarks != nullptr) {
      // Landmarks are the top-ranked vertices under the same order, so
      // a landmark probe is decisive for landmark hubs (the common
      // case); other candidates fall through to the label query.
      const LandmarkFilter::Verdict verdict =
          ctx.landmarks->Probe(u, hub_rank, d);
      if (verdict == LandmarkFilter::Verdict::kPrune) {
        ++s.pruned_landmark;
        continue;
      }
      if (verdict == LandmarkFilter::Verdict::kKeep) {
        s.pending.push_back({hub_rank, d, s.cand_count[hub_rank]});
        continue;
      }
    }
    // 2-hop query against committed labels (distance < d on both
    // sides). Entries of w are committed level by level, hence sorted
    // by distance: once e.dist >= d no witness < d can follow.
    uint32_t q = kInfDistance;
    for (const LabelEntry& e : ctx.store.Entries(w)) {
      if (e.dist >= d) break;
      const Distance ud = s.tmp_dist[e.hub_rank];
      if (ud == kInfDistance) continue;
      q = std::min<uint32_t>(q, static_cast<uint32_t>(ud) + e.dist);
      if (q < d) break;
    }
    if (q < d) {
      ++s.pruned_query;
      continue;
    }
    s.pending.push_back({hub_rank, d, s.cand_count[hub_rank]});
  }

  for (const LabelEntry& e : my_labels) s.tmp_dist[e.hub_rank] = kInfDistance;
  ctx.staging[u] = s.pending;  // copy into the per-vertex staging slot
}

/// PULL iteration body for one vertex: gather neighbors' level-(d-1)
/// labels, merge counts per hub (Label Merging), then prune and stage.
void ProcessVertexPull(BuildContext& ctx, ThreadScratch& s, VertexId u,
                       Distance d) {
  const Rank my_rank = ctx.order.RankOf(u);
  const std::span<const Count> weights = ctx.options.vertex_weights;
  ++s.epoch;
  s.cand_hubs.clear();
  for (VertexId v : ctx.graph.Neighbors(u)) {
    // Extending a neighbor's path makes v an internal vertex, so its
    // multiplicity applies — except at d == 1, where the only level-0
    // entry is v's own hub (v stays an endpoint).
    const Count factor =
        (weights.empty() || d == 1) ? Count{1} : weights[v];
    for (const LabelEntry& e : ctx.store.Level(v, d - 1)) {
      // Level entries are sorted by hub rank; every hub from here on
      // ranks below u (Lemma 3), so stop scanning this neighbor.
      if (e.hub_rank >= my_rank) break;
      const Count contribution = SatMul(e.count, factor);
      if (s.cand_epoch[e.hub_rank] != s.epoch) {
        s.cand_epoch[e.hub_rank] = s.epoch;
        s.cand_count[e.hub_rank] = contribution;
        s.cand_hubs.push_back(e.hub_rank);
      } else {
        s.cand_count[e.hub_rank] =
            SatAdd(s.cand_count[e.hub_rank], contribution);
      }
    }
  }
  if (!s.cand_hubs.empty()) {
    PruneAndStage(ctx, s, u, d);
  }
}

/// Runs `body(u)` over `plan.sequence` honoring the plan's chunking.
template <typename Body>
void RunPlanned(const SchedulePlan& plan, int num_threads, const Body& body) {
  const size_t n = plan.sequence.size();
  if (plan.dynamic) {
    ParallelForDynamic(n, num_threads, plan.chunk,
                       [&](size_t i) { body(plan.sequence[i]); });
  } else {
    ParallelForStatic(n, num_threads,
                      [&](size_t i) { body(plan.sequence[i]); });
  }
}

/// One PULL iteration at distance d; returns entries committed.
size_t PullIteration(BuildContext& ctx, Distance d, int num_threads) {
  const VertexId n = ctx.graph.NumVertices();
  // Active vertices: those with a neighbor that committed level d-1
  // entries. Also collect the Def.-11 cost estimate when needed.
  const bool need_costs = ctx.options.schedule == ScheduleKind::kCostAware;
  std::vector<uint8_t> active_flag(n, 0);
  std::vector<uint64_t> vertex_cost(need_costs ? n : 0, 0);
  ParallelForStatic(n, num_threads, [&](size_t ui) {
    const auto u = static_cast<VertexId>(ui);
    uint64_t cost = 0;
    for (VertexId v : ctx.graph.Neighbors(u)) {
      const size_t len = ctx.store.Level(v, d - 1).size();
      if (len != 0) {
        active_flag[u] = 1;
        if (!need_costs) break;
        cost += len;
      }
    }
    if (need_costs) vertex_cost[u] = cost;
  });
  std::vector<VertexId> active;
  for (VertexId u = 0; u < n; ++u) {
    if (active_flag[u] != 0) active.push_back(u);
  }
  std::vector<uint64_t> costs;
  if (need_costs) {
    costs.reserve(active.size());
    for (VertexId u : active) costs.push_back(vertex_cost[u]);
  }
  const SchedulePlan plan = PlanIteration(ctx.options.schedule, active, costs,
                                          ctx.order.VertexToRank());
  RunPlanned(plan, num_threads, [&](VertexId u) {
    ProcessVertexPull(ctx, ctx.scratch[omp_get_thread_num()], u, d);
  });

  // Commit phase: append each vertex's staged level (possibly empty so
  // level offsets stay aligned across vertices).
  std::atomic<size_t> committed{0};
  ParallelForStatic(n, num_threads, [&](size_t ui) {
    const auto u = static_cast<VertexId>(ui);
    ctx.store.CommitLevel(u, ctx.staging[u]);
    if (!ctx.staging[u].empty()) {
      // relaxed: per-thread tally; the parallel-for join orders it
      // before the final load.
      committed.fetch_add(ctx.staging[u].size(), std::memory_order_relaxed);
      ctx.staging[u].clear();
    }
  });
  return committed.load();
}

/// One PUSH iteration at distance d (paper Def. 9 / Fig. 3c): sources
/// scatter their level-(d-1) entries to neighbors; a counting-sort
/// grouping pass then merges per target. Same math as PULL — the merge
/// is SatAdd, which is associative and commutative, so the final index
/// is identical — but the scattered tuples must be materialized, which
/// is the paradigm's inherent extra cost.
size_t PushIteration(BuildContext& ctx, Distance d, int num_threads) {
  const VertexId n = ctx.graph.NumVertices();
  const std::vector<Rank>& rank_of = ctx.order.VertexToRank();

  // Pass 1: count incoming tuples per target.
  std::unique_ptr<std::atomic<uint64_t>[]> incoming(
      new std::atomic<uint64_t>[n]);
  for (VertexId u = 0; u < n; ++u) incoming[u].store(0);
  ParallelForDynamic(n, num_threads, 64, [&](size_t vi) {
    const auto v = static_cast<VertexId>(vi);
    const auto level = ctx.store.Level(v, d - 1);
    if (level.empty()) return;
    for (VertexId u : ctx.graph.Neighbors(v)) {
      const Rank ru = rank_of[u];
      // Entries sorted by hub rank: count how many outrank u.
      size_t cnt = 0;
      for (const LabelEntry& e : level) {
        if (e.hub_rank >= ru) break;
        ++cnt;
      }
      // relaxed: independent per-slot counts; the parallel-for join
      // publishes them to the offset pass.
      if (cnt != 0) incoming[u].fetch_add(cnt, std::memory_order_relaxed);
    }
  });

  // Offsets per target region.
  std::vector<uint64_t> offset(static_cast<size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    offset[u + 1] = offset[u] + incoming[u].load();
  }
  const uint64_t total_tuples = offset[n];
  struct Tuple {
    Rank hub;
    Count count;
  };
  std::vector<Tuple> tuples(total_tuples);
  std::unique_ptr<std::atomic<uint64_t>[]> cursor(
      new std::atomic<uint64_t>[n]);
  for (VertexId u = 0; u < n; ++u) cursor[u].store(0);

  // Pass 2: scatter. Order within a target region is nondeterministic,
  // but the per-hub merge below is order-insensitive.
  const std::span<const Count> weights = ctx.options.vertex_weights;
  ParallelForDynamic(n, num_threads, 64, [&](size_t vi) {
    const auto v = static_cast<VertexId>(vi);
    const auto level = ctx.store.Level(v, d - 1);
    if (level.empty()) return;
    // Same internal-vertex multiplicity rule as the PULL paradigm.
    const Count factor =
        (weights.empty() || d == 1) ? Count{1} : weights[v];
    for (VertexId u : ctx.graph.Neighbors(v)) {
      const Rank ru = rank_of[u];
      for (const LabelEntry& e : level) {
        if (e.hub_rank >= ru) break;
        // relaxed: slot reservation only needs atomicity; the
        // parallel-for join orders tuple writes before readers.
        const uint64_t slot =
            offset[u] + cursor[u].fetch_add(1, std::memory_order_relaxed);
        tuples[slot] = {e.hub_rank, SatMul(e.count, factor)};
      }
    }
  });

  // Pass 3: per-target merge + prune + stage.
  std::vector<VertexId> active;
  for (VertexId u = 0; u < n; ++u) {
    if (offset[u + 1] != offset[u]) active.push_back(u);
  }
  std::vector<uint64_t> costs;
  if (ctx.options.schedule == ScheduleKind::kCostAware) {
    costs.reserve(active.size());
    for (VertexId u : active) costs.push_back(offset[u + 1] - offset[u]);
  }
  const SchedulePlan plan = PlanIteration(ctx.options.schedule, active, costs,
                                          rank_of);
  RunPlanned(plan, num_threads, [&](VertexId u) {
    ThreadScratch& s = ctx.scratch[omp_get_thread_num()];
    ++s.epoch;
    s.cand_hubs.clear();
    for (uint64_t i = offset[u]; i < offset[u + 1]; ++i) {
      const Tuple& t = tuples[i];
      if (s.cand_epoch[t.hub] != s.epoch) {
        s.cand_epoch[t.hub] = s.epoch;
        s.cand_count[t.hub] = t.count;
        s.cand_hubs.push_back(t.hub);
      } else {
        s.cand_count[t.hub] = SatAdd(s.cand_count[t.hub], t.count);
      }
    }
    if (!s.cand_hubs.empty()) PruneAndStage(ctx, s, u, d);
  });

  std::atomic<size_t> committed{0};
  ParallelForStatic(n, num_threads, [&](size_t ui) {
    const auto u = static_cast<VertexId>(ui);
    ctx.store.CommitLevel(u, ctx.staging[u]);
    if (!ctx.staging[u].empty()) {
      // relaxed: per-thread tally; the parallel-for join orders it
      // before the final load.
      committed.fetch_add(ctx.staging[u].size(), std::memory_order_relaxed);
      ctx.staging[u].clear();
    }
  });
  return committed.load();
}

}  // namespace

PspcBuildResult BuildPspcIndex(const Graph& graph, const VertexOrder& order,
                               const PspcOptions& options) {
  const VertexId n = graph.NumVertices();
  PSPC_CHECK(order.Size() == n);
  PSPC_CHECK(options.vertex_weights.empty() ||
             options.vertex_weights.size() == n);
  PspcBuildResult result;

  int num_threads = options.num_threads;
  if (num_threads <= 0) num_threads = MaxThreads();

  // Phase LL: landmark distance tables (paper §III-H, Fig. 13 "LL").
  LandmarkFilter landmarks;
  {
    WallTimer timer;
    if (options.use_landmark_filter && options.num_landmarks > 0 && n > 0) {
      landmarks =
          LandmarkFilter(graph, order, options.num_landmarks, num_threads);
    }
    result.stats.landmark_seconds = timer.ElapsedSeconds();
  }

  // Phase LC: distance-iteration label construction (Fig. 13 "LC").
  WallTimer timer;
  BuildContext ctx(graph, order, options, num_threads);
  if (options.use_landmark_filter && landmarks.NumLandmarks() > 0) {
    ctx.landmarks = &landmarks;
  }

  // Level 0: every vertex is its own hub with one empty trough path.
  for (VertexId v = 0; v < n; ++v) {
    const LabelEntry self{order.RankOf(v), 0, 1};
    ctx.store.CommitLevel(v, {&self, 1});
  }
  result.stats.entries_per_level.push_back(n);
  result.stats.num_iterations = 1;

  for (Distance d = 1; d < kInfDistance; ++d) {
    const size_t committed =
        options.paradigm == Paradigm::kPull
            ? PullIteration(ctx, d, num_threads)
            : PushIteration(ctx, d, num_threads);
    if (committed == 0) break;
    result.stats.entries_per_level.push_back(committed);
    ++result.stats.num_iterations;
  }

  for (const ThreadScratch& s : ctx.scratch) {
    result.stats.candidates_after_merge += s.candidates;
    result.stats.pruned_by_landmark += s.pruned_landmark;
    result.stats.pruned_by_query += s.pruned_query;
  }
  result.stats.total_entries = ctx.store.TotalEntries();
  result.stats.labels_inserted = result.stats.total_entries;
  result.stats.construction_seconds = timer.ElapsedSeconds();

  result.index = SpcIndex(order, ctx.store.TakeEntries());
  return result;
}

}  // namespace pspc
