#ifndef PSPC_SRC_SERVE_INDEX_SNAPSHOT_H_
#define PSPC_SRC_SERVE_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/label/label_entry.h"
#include "src/label/spc_index.h"

/// An immutable, queryable freeze of a `DynamicSpcIndex` generation.
///
/// Capture shares the base CSR (a `shared_ptr`, so a later staleness
/// rebuild cannot free it while an epoch still reads it) and deep-copies
/// the copy-on-write overlay — only the vertices repairs have touched,
/// which is exactly the part of the label state the writer keeps
/// mutating. After construction a snapshot is never written again, so
/// any number of reader threads may query it without synchronization;
/// answers are exact for the graph as of the captured generation.
namespace pspc {

class DynamicSpcIndex;

class IndexSnapshot {
 public:
  /// Freezes the current labels of `index`. Must be called from the
  /// thread that owns the index's write path (the same thread of
  /// control that applies updates).
  static std::unique_ptr<const IndexSnapshot> Capture(
      const DynamicSpcIndex& index);

  /// Distance and exact shortest-path count on the captured graph
  /// generation — the same merge kernel as every other label container.
  SpcResult Query(VertexId s, VertexId t) const;

  /// Labels of `v` as of the capture, rank-sorted.
  std::span<const LabelEntry> Labels(VertexId v) const {
    const auto it = overlay_.find(v);
    if (it == overlay_.end()) return base_->Labels(v);
    return {it->second.data(), it->second.size()};
  }

  /// Generation counter of the captured index state.
  uint64_t Generation() const { return generation_; }

  VertexId NumVertices() const { return num_vertices_; }
  EdgeId NumEdges() const { return num_edges_; }

  /// Vertices held out-of-line (capture cost diagnostic).
  size_t OverlaidVertices() const { return overlay_.size(); }

 private:
  IndexSnapshot() = default;

  std::shared_ptr<const SpcIndex> base_;
  std::unordered_map<VertexId, std::vector<LabelEntry>> overlay_;
  uint64_t generation_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_INDEX_SNAPSHOT_H_
