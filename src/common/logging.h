#ifndef PSPC_SRC_COMMON_LOGGING_H_
#define PSPC_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

/// Minimal logging + invariant checking. `PSPC_CHECK` guards internal
/// invariants (programmer errors) and aborts with a message on failure;
/// recoverable conditions use Status instead.
namespace pspc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& message);

}  // namespace internal
}  // namespace pspc

#define PSPC_LOG(level, msg_expr)                                          \
  do {                                                                     \
    if (static_cast<int>(::pspc::LogLevel::level) >=                       \
        static_cast<int>(::pspc::GetLogLevel())) {                         \
      std::ostringstream _oss;                                             \
      _oss << msg_expr;                                                    \
      ::pspc::internal::LogMessage(::pspc::LogLevel::level, __FILE__,      \
                                   __LINE__, _oss.str());                  \
    }                                                                      \
  } while (0)

#define PSPC_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pspc::internal::CheckFailed(__FILE__, __LINE__, #cond, "");        \
    }                                                                      \
  } while (0)

#define PSPC_CHECK_MSG(cond, msg_expr)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream _oss;                                             \
      _oss << msg_expr;                                                    \
      ::pspc::internal::CheckFailed(__FILE__, __LINE__, #cond,             \
                                    _oss.str());                           \
    }                                                                      \
  } while (0)

#endif  // PSPC_SRC_COMMON_LOGGING_H_
