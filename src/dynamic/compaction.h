#ifndef PSPC_SRC_DYNAMIC_COMPACTION_H_
#define PSPC_SRC_DYNAMIC_COMPACTION_H_

#include <cstddef>
#include <cstdint>

#include "src/dynamic/dynamic_spc_index.h"

/// Background overlay compaction — the third leg of the
/// memory-bandwidth query path (with packed_label.h and
/// label_merge_simd.h).
///
/// Under sustained churn the dynamic index accretes two kinds of query
/// overhead: repaired vertices serve from raw overlay chunks (16
/// bytes/entry, outside the packed base arena), and stale entries —
/// distances strictly longer than the true shortest, which repair
/// provably may leave behind — widen every merge they participate in.
/// `OverlayCompactor` runs two passes against both:
///
///  * `PackStep()` rewrites up to a budget of repaired vertices'
///    overlay chunks into packed form between captures. The swap goes
///    through the overlay's COW discipline (`ReplaceChunk`), so
///    already-published snapshots keep serving the chunks they
///    captured and the next capture publishes the packed twins at the
///    usual O(delta) cost.
///
///  * `Fold()` / `FoldIfStale()` folds a quiesced overlay into a
///    fresh packed base CSR: it materializes base (+) overlay into a
///    new `SpcIndex` (+ packed mirror), optionally dropping stale
///    entries, and rebases the overlay to empty. Pruning is
///    exact-preserving: an entry `(v, h, d)` is dropped only when `d`
///    exceeds the index's own (exact) `Query(v, vertex(h))` distance,
///    and such an entry can never reach the minimum of any query merge
///    — `d + d' > sd(v,h) + sd(h,t) >= sd(v,t)` by the triangle
///    inequality — so every query result is bit-identical before and
///    after. Unlike `Rebuild()` there is no BFS re-construction and no
///    re-ordering: a fold is a linear materialization pass.
///
/// Threading: the compactor mutates the index and must run on the
/// index's single writer thread of control. `ServingEngine` drives it
/// from its background compaction thread under the writer mutex,
/// interleaved with update batches, and publishes a snapshot after
/// each effective step (see serving_engine.h).
namespace pspc {

struct CompactionOptions {
  /// Max overlay chunks rewritten per `PackStep` call — bounds how
  /// long the writer lock is held per background step.
  size_t chunk_budget_per_step = 256;
  /// `FoldIfStale` folds when overlay entries / base entries exceeds
  /// this. Folds are cheaper than rebuilds but still O(n); keep this
  /// above the per-step pack budget's reach.
  double fold_staleness_ratio = 0.10;
  /// Drop provably stale entries (dist strictly longer than the exact
  /// query distance) while folding.
  bool prune_stale_entries = true;
};

struct CompactionStats {
  uint64_t pack_steps = 0;      // PackStep calls that packed anything
  uint64_t chunks_packed = 0;   // overlay chunks rewritten packed
  uint64_t folds = 0;
  uint64_t entries_pruned = 0;  // stale entries dropped across folds
  uint64_t packed_chunk_bytes = 0;  // packed footprint of rewritten chunks
  uint64_t raw_chunk_bytes = 0;     // raw footprint those chunks had
  uint64_t last_fold_entries_folded = 0;  // overlay entries at last fold
};

class OverlayCompactor {
 public:
  /// `index` must outlive the compactor. All methods must run on the
  /// thread of control that owns the index's write path.
  explicit OverlayCompactor(DynamicSpcIndex* index,
                            CompactionOptions options = {});

  /// Rewrites up to `chunk_budget_per_step` not-yet-packed overlay
  /// chunks into packed form. Returns the number rewritten (0 = the
  /// whole overlay is already packed). The scan resumes where the
  /// previous step left off, so successive steps cover the overlay
  /// round-robin.
  size_t PackStep();

  /// `Fold()` when the staleness ratio exceeds the configured
  /// threshold; returns whether a fold ran.
  bool FoldIfStale();

  /// Folds the overlay into a fresh packed base unconditionally (see
  /// class comment). Bumps the index generation.
  void Fold();

  const CompactionStats& Stats() const { return stats_; }
  const CompactionOptions& Options() const { return options_; }

 private:
  DynamicSpcIndex* index_;
  CompactionOptions options_;
  CompactionStats stats_;
  VertexId pack_cursor_ = 0;  // round-robin resume point for PackStep
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_COMPACTION_H_
