#include "src/serve/epoch_manager.h"

#include "src/common/logging.h"

namespace pspc {

size_t EpochManager::Enter() {
  // Per-thread first-fit hint: after the first Enter, a thread's CAS
  // almost always lands on the slot it used last time.
  static thread_local size_t hint = 0;
  const uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
  for (size_t probe = 0; probe < kMaxSlots; ++probe) {
    const size_t i = (hint + probe) % kMaxSlots;
    uint64_t expected = 0;
    if (slots_[i].value.compare_exchange_strong(expected, epoch,
                                                std::memory_order_seq_cst)) {
      hint = i;
      return i;
    }
  }
  PSPC_CHECK_MSG(false, "all " << kMaxSlots
                               << " epoch slots pinned simultaneously");
  return 0;  // unreachable
}

void EpochManager::Exit(size_t slot) {
  PSPC_CHECK(slot < kMaxSlots);
  PSPC_CHECK(slots_[slot].value.load(std::memory_order_relaxed) != 0);
  slots_[slot].value.store(0, std::memory_order_seq_cst);
}

uint64_t EpochManager::AdvanceEpoch() {
  return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = kNoActiveReader;
  for (const Slot& slot : slots_) {
    const uint64_t value = slot.value.load(std::memory_order_seq_cst);
    if (value != 0 && value < min) min = value;
  }
  return min;
}

size_t EpochManager::ActiveReaders() const {
  size_t active = 0;
  for (const Slot& slot : slots_) {
    if (slot.value.load(std::memory_order_seq_cst) != 0) ++active;
  }
  return active;
}

}  // namespace pspc
