#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

/// spc_lint: the project-invariant linter. Scans src/, tools/,
/// examples/, bench/ and tests/ (minus the golden corpora) for
/// violations of the repo-specific rules in tools/lint_rules.h
/// (metric-name catalog membership, the raw-mutex ban,
/// memory_order_relaxed and (void)-cast justification comments,
/// hot-path libc bans, include-guard hygiene,
/// NO_THREAD_SAFETY_ANALYSIS escapes).
///
///   spc_lint [--root <repo-root>]
///
/// Prints one `file:line: [rule] message` diagnostic per violation and
/// exits non-zero if any were found — the CI lint lane is exactly this
/// invocation. Rule semantics are tested by tests/lint_corpus_test.cc
/// against the golden corpus in tests/lint_corpus/.
namespace {

int Run(const std::filesystem::path& root) {
  std::string error;
  const std::vector<spclint::Violation> violations =
      spclint::LintTree(root, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "spc_lint: %s\n", error.c_str());
    return 2;
  }
  for (const spclint::Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "spc_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::fprintf(stdout, "spc_lint: clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = std::filesystem::current_path();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr, "usage: spc_lint [--root <repo-root>]\n");
      return 2;
    }
  }
  if (!std::filesystem::is_directory(root / "src")) {
    std::fprintf(stderr,
                 "spc_lint: %s does not look like the repo root (no src/)\n",
                 root.string().c_str());
    return 2;
  }
  return Run(root);
}
