// Directed dynamic maintenance (`DynamicDspcIndex`): single-update
// exactness against the DiBfsSpcPair oracle across randomized mixed
// insert/delete streams, the batched ≡ sequential ≡ oracle equivalence
// (mirroring tests/dynamic_batch_test.cc), direction distinctness
// (u -> v and v -> u never conflate), atomic batch validation, and the
// staleness-rebuild path.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/digraph/dbfs_spc.h"
#include "src/digraph/digraph.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

DynamicDiOptions NoRebuildOptions() {
  DynamicDiOptions options;
  options.rebuild_threshold = 1e18;  // repair-only
  return options;
}

/// Mirror of the evolving directed edge set, for oracles and batch
/// sampling. Pairs are ordered: (u, v) is the edge u -> v.
class DiEdgeMirror {
 public:
  explicit DiEdgeMirror(const DiGraph& g) : n_(g.NumVertices()) {
    for (VertexId u = 0; u < n_; ++u) {
      for (const VertexId v : g.OutNeighbors(u)) edges_.insert({u, v});
    }
  }

  void Apply(const EdgeUpdate& up) {
    if (up.kind == EdgeUpdateKind::kInsert) {
      edges_.insert({up.u, up.v});
    } else {
      edges_.erase({up.u, up.v});
    }
  }

  DiGraph Materialize() const {
    DiGraphBuilder builder(n_);
    for (const auto& [u, v] : edges_) builder.AddEdge(u, v);
    return builder.Build();
  }

  /// Random mixed batch, valid against the mirrored state (and applied
  /// to it): deletes existing directed edges and inserts absent
  /// ordered pairs, interleaved.
  EdgeUpdateBatch SampleBatch(Rng& rng, size_t size) {
    EdgeUpdateBatch batch;
    for (size_t i = 0; i < size; ++i) {
      const bool remove = !edges_.empty() && rng.NextBool(0.5);
      EdgeUpdate up;
      if (remove) {
        auto it = edges_.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(edges_.size())));
        up = {it->first, it->second, EdgeUpdateKind::kDelete};
      } else {
        while (true) {
          const auto u = static_cast<VertexId>(rng.NextBounded(n_));
          const auto v = static_cast<VertexId>(rng.NextBounded(n_));
          if (u != v && !edges_.contains({u, v})) {
            up = {u, v, EdgeUpdateKind::kInsert};
            break;
          }
        }
      }
      batch.Add(up);
      Apply(up);
    }
    return batch;
  }

  size_t NumEdges() const { return edges_.size(); }

 private:
  VertexId n_;
  std::set<std::pair<VertexId, VertexId>> edges_;
};

void ExpectAllPairsExact(const DynamicDspcIndex& index, const DiGraph& graph,
                         const std::string& context) {
  for (const auto& [s, t] : testing::AllPairs(graph.NumVertices())) {
    ASSERT_EQ(index.Query(s, t), DiBfsSpcPair(graph, s, t))
        << context << " pair (" << s << "," << t << ")";
  }
}

// ------------------------------------------------------ single updates

TEST(DynamicDspcTest, InsertShortcutOnCycle) {
  // The directed cycle has exactly one path between any pair; a chord
  // rewrites distances for many ordered pairs in one direction only.
  DiGraph g = GenerateDiCycle(10);
  DynamicDspcIndex index(g, DiPspcOptions{}, NoRebuildOptions());
  DiEdgeMirror mirror(g);

  ASSERT_TRUE(index.InsertEdge(0, 5).ok());
  mirror.Apply({0, 5, EdgeUpdateKind::kInsert});
  ExpectAllPairsExact(index, mirror.Materialize(), "after chord 0->5");

  ASSERT_TRUE(index.InsertEdge(7, 2).ok());
  mirror.Apply({7, 2, EdgeUpdateKind::kInsert});
  ExpectAllPairsExact(index, mirror.Materialize(), "after chord 7->2");
}

TEST(DynamicDspcTest, DeleteBreaksOneDirectionOnly) {
  // Both orientations present: deleting u -> v must leave v -> u (and
  // every pair served by it) untouched.
  const Graph und = GenerateErdosRenyi(24, 60, 11);
  DiGraph g = FromUndirected(und);
  DynamicDspcIndex index(g, DiPspcOptions{}, NoRebuildOptions());
  DiEdgeMirror mirror(g);

  Rng rng(17);
  for (int round = 0; round < 6; ++round) {
    // Pick a live edge and delete just that orientation.
    const DiGraph current = mirror.Materialize();
    VertexId u = 0, v = 0;
    for (int tries = 0; tries < 1000; ++tries) {
      u = static_cast<VertexId>(rng.NextBounded(current.NumVertices()));
      const auto nbrs = current.OutNeighbors(u);
      if (nbrs.empty()) continue;
      v = nbrs[rng.NextBounded(nbrs.size())];
      break;
    }
    ASSERT_TRUE(index.DeleteEdge(u, v).ok()) << "round " << round;
    mirror.Apply({u, v, EdgeUpdateKind::kDelete});
    ExpectAllPairsExact(index, mirror.Materialize(),
                        "round " + std::to_string(round));
  }
}

TEST(DynamicDspcTest, ErrorsLeaveIndexUntouched) {
  DiGraph g = GenerateDiCycle(6);
  DynamicDspcIndex index(g, DiPspcOptions{}, NoRebuildOptions());
  const uint64_t gen0 = index.Generation();

  EXPECT_EQ(index.InsertEdge(0, 1).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(index.InsertEdge(3, 3).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(index.InsertEdge(0, 99).code(), Status::Code::kInvalidArgument);
  // 1 -> 0 is not an edge of the cycle even though 0 -> 1 is.
  EXPECT_EQ(index.DeleteEdge(1, 0).code(), Status::Code::kNotFound);
  EXPECT_EQ(index.Generation(), gen0);
  ExpectAllPairsExact(index, g, "after rejected updates");
}

// -------------------------------------------------- randomized streams

struct StreamCase {
  std::string name;
  DiGraph (*make)();
  uint64_t seed;
};

DiGraph MakeRandomDense() { return GenerateRandomDiGraph(32, 140, 31); }
DiGraph MakeRandomSparse() { return GenerateRandomDiGraph(40, 70, 32); }
DiGraph MakeSymmetric() {
  return FromUndirected(GenerateBarabasiAlbert(32, 3, 33));
}
DiGraph MakeCycleChords() {
  DiGraphBuilder builder(30);
  for (VertexId v = 0; v < 30; ++v) builder.AddEdge(v, (v + 1) % 30);
  builder.AddEdge(0, 15);
  builder.AddEdge(20, 5);
  return builder.Build();
}

const StreamCase kStreamCases[] = {
    {"random_dense", &MakeRandomDense, 901},
    {"random_sparse", &MakeRandomSparse, 902},
    {"symmetric_closure", &MakeSymmetric, 903},
    {"cycle_with_chords", &MakeCycleChords, 904},
};

class DirectedStreamTest : public ::testing::TestWithParam<int> {
 protected:
  const StreamCase& Case() const { return kStreamCases[GetParam()]; }
};

// Sequential single-update exactness across a mixed stream: after
// every update, all ordered pairs match the directed BFS oracle.
TEST_P(DirectedStreamTest, MixedStreamStaysOracleExact) {
  const DiGraph start = Case().make();
  DynamicDspcIndex index(start, DiPspcOptions{}, NoRebuildOptions());
  DiEdgeMirror mirror(start);
  Rng rng(Case().seed);

  for (int step = 0; step < 40; ++step) {
    const EdgeUpdateBatch one = mirror.SampleBatch(rng, 1);
    ASSERT_TRUE(index.Apply(one.Updates()[0]).ok())
        << Case().name << " step " << step;
    // All-pairs checks are quadratic; sample the tail of the stream.
    if (step % 4 == 3) {
      ExpectAllPairsExact(index, mirror.Materialize(),
                          Case().name + " step " + std::to_string(step));
    }
  }
  ExpectAllPairsExact(index, mirror.Materialize(), Case().name + " final");
  EXPECT_EQ(index.Stats().rebuilds, 0u);
}

// The batched ≡ sequential ≡ oracle equivalence of the undirected
// suite, on the directed index: applying a mixed batch atomically
// answers exactly like applying it update by update, and both match
// the directed BFS oracle on the final graph.
TEST_P(DirectedStreamTest, BatchedEqualsSequentialEqualsOracle) {
  const DiGraph start = Case().make();
  DynamicDspcIndex batched(start, DiPspcOptions{}, NoRebuildOptions());
  DynamicDspcIndex sequential(start, DiPspcOptions{}, NoRebuildOptions());
  DiEdgeMirror mirror(start);
  Rng rng(Case().seed + 100);

  for (int round = 0; round < 6; ++round) {
    const size_t size = round < 3 ? 8 : 20;  // small and larger batches
    const EdgeUpdateBatch batch = mirror.SampleBatch(rng, size);
    ASSERT_TRUE(batched.ApplyBatch(batch).ok())
        << Case().name << " round " << round;
    for (const EdgeUpdate& up : batch) {
      ASSERT_TRUE(sequential.Apply(up).ok())
          << Case().name << " round " << round;
    }
    const DiGraph current = mirror.Materialize();
    ASSERT_EQ(batched.NumEdges(), mirror.NumEdges());
    for (const auto& [s, t] : testing::AllPairs(current.NumVertices())) {
      const SpcResult oracle = DiBfsSpcPair(current, s, t);
      ASSERT_EQ(batched.Query(s, t), oracle)
          << Case().name << " round " << round << " batched pair (" << s
          << "," << t << ")";
      ASSERT_EQ(sequential.Query(s, t), oracle)
          << Case().name << " round " << round << " sequential pair (" << s
          << "," << t << ")";
    }
  }
  EXPECT_EQ(batched.Stats().rebuilds, 0u);
  // Insertion coalescing: the batched index never launches more
  // per-hub repairs than update-by-update application. (Directed
  // deletions replay the single-edge path, so the bound comes from
  // the multi-source insert runs.)
  EXPECT_LE(batched.Stats().resumed_bfs_runs,
            sequential.Stats().resumed_bfs_runs);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DirectedStreamTest,
    ::testing::Range(0, static_cast<int>(std::size(kStreamCases))),
    [](const ::testing::TestParamInfo<int>& info) {
      return kStreamCases[info.param].name;
    });

// ------------------------------------------------------ batch semantics

TEST(DirectedApplyBatchTest, AtomicOnMissingDelete) {
  const DiGraph g = GenerateDiCycle(8);
  DynamicDspcIndex index(g, DiPspcOptions{}, NoRebuildOptions());
  const uint64_t gen0 = index.Generation();

  EdgeUpdateBatch bad;
  bad.Insert(0, 4);
  bad.Delete(1, 0);  // reverse of a cycle edge: missing
  EXPECT_EQ(index.ApplyBatch(bad).code(), Status::Code::kNotFound);
  EXPECT_EQ(index.NumEdges(), 8u);
  EXPECT_FALSE(index.HasEdge(0, 4));
  EXPECT_EQ(index.Generation(), gen0);
  ExpectAllPairsExact(index, g, "after rejected batch");
}

TEST(DirectedApplyBatchTest, ReverseEdgesDoNotCoalesce) {
  const DiGraph g = GenerateDiCycle(8);
  DynamicDspcIndex index(g, DiPspcOptions{}, NoRebuildOptions());

  // i 0->4 then d 4->0 must NOT cancel (distinct directed edges); the
  // delete targets a missing edge and rejects the batch atomically.
  EdgeUpdateBatch batch;
  batch.Insert(0, 4);
  batch.Delete(4, 0);
  EXPECT_EQ(index.ApplyBatch(batch).code(), Status::Code::kNotFound);
  EXPECT_FALSE(index.HasEdge(0, 4));

  // Both orientations inserted: two distinct net insertions.
  EdgeUpdateBatch both;
  both.Insert(0, 4);
  both.Insert(4, 0);
  ASSERT_TRUE(index.ApplyBatch(both).ok());
  EXPECT_TRUE(index.HasEdge(0, 4));
  EXPECT_TRUE(index.HasEdge(4, 0));
  DiEdgeMirror mirror(g);
  mirror.Apply({0, 4, EdgeUpdateKind::kInsert});
  mirror.Apply({4, 0, EdgeUpdateKind::kInsert});
  ExpectAllPairsExact(index, mirror.Materialize(), "both orientations");
}

TEST(DirectedApplyBatchTest, CancelingPairsAreNoOpsAndOneBumpPerBatch) {
  const DiGraph g = GenerateDiCycle(8);
  DynamicDspcIndex index(g, DiPspcOptions{}, NoRebuildOptions());
  const uint64_t gen0 = index.Generation();

  EdgeUpdateBatch noop;
  noop.Insert(0, 4);
  noop.Delete(0, 4);   // cancels
  noop.Insert(0, 1);   // redundant: the cycle already has it
  noop.Delete(2, 3);
  noop.Insert(2, 3);   // round trip
  ASSERT_TRUE(index.ApplyBatch(noop).ok());
  EXPECT_EQ(index.Generation(), gen0);  // nothing net: nothing published
  EXPECT_EQ(index.NumEdges(), 8u);
  EXPECT_EQ(index.Stats().updates_coalesced, 5u);
  EXPECT_EQ(index.Stats().TotalHubRuns(), 0u);
  ExpectAllPairsExact(index, g, "after no-op batch");

  DiEdgeMirror mirror(g);
  Rng rng(55);
  const EdgeUpdateBatch batch = mirror.SampleBatch(rng, 10);
  ASSERT_TRUE(index.ApplyBatch(batch).ok());
  EXPECT_EQ(index.Generation(), gen0 + 1);  // one bump for the batch
}

// ------------------------------------------------------- rebuild path

TEST(DynamicDspcTest, StalenessRebuildStaysExact) {
  const DiGraph start = GenerateRandomDiGraph(28, 110, 77);
  DynamicDiOptions options;
  options.rebuild_threshold = 0.05;  // rebuild early and often
  DynamicDspcIndex index(start, DiPspcOptions{}, options);
  DiEdgeMirror mirror(start);
  Rng rng(78);

  for (int step = 0; step < 30; ++step) {
    const EdgeUpdateBatch one = mirror.SampleBatch(rng, 1);
    ASSERT_TRUE(index.Apply(one.Updates()[0]).ok()) << "step " << step;
  }
  ExpectAllPairsExact(index, mirror.Materialize(), "after rebuild stream");
  EXPECT_GT(index.Stats().rebuilds, 0u);
  // A rebuild folds both overlays away.
  EXPECT_LE(index.StalenessRatio(), 0.05);
}

}  // namespace
}  // namespace pspc
