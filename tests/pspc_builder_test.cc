#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/core/hp_spc_builder.h"
#include "src/core/pspc_builder.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/order/degree_order.h"
#include "src/order/hybrid_order.h"
#include "src/order/vertex_order.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

using pspc::testing::AllPairs;

VertexOrder PaperFigure2Order() {
  return VertexOrder(std::vector<VertexId>{0, 6, 3, 9, 2, 4, 5, 1, 7, 8});
}

PspcOptions Defaults() {
  PspcOptions o;
  o.num_landmarks = 4;
  return o;
}

// ------------------------------------------------ Core equivalences --

TEST(PspcBuilderTest, MatchesHpSpcOnFigure2) {
  const Graph g = PaperFigure2Graph();
  const VertexOrder order = PaperFigure2Order();
  const auto hp = BuildHpSpcIndex(g, order);
  const auto ps = BuildPspcIndex(g, order, Defaults());
  // Theorem 2: the distance-partitioned index is the same label set.
  EXPECT_EQ(ps.index, hp.index);
  EXPECT_EQ(ps.index.TotalEntries(), 35u);
}

TEST(PspcBuilderTest, MatchesHpSpcOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = GenerateErdosRenyi(70, 180, seed);
    const VertexOrder order = DegreeOrder(g);
    const auto hp = BuildHpSpcIndex(g, order);
    const auto ps = BuildPspcIndex(g, order, Defaults());
    EXPECT_EQ(ps.index, hp.index) << "seed " << seed;
  }
}

TEST(PspcBuilderTest, MatchesHpSpcOnScaleFreeGraph) {
  const Graph g = GenerateBarabasiAlbert(150, 3, 7);
  const VertexOrder order = DegreeOrder(g);
  EXPECT_EQ(BuildPspcIndex(g, order, Defaults()).index,
            BuildHpSpcIndex(g, order).index);
}

TEST(PspcBuilderTest, MatchesHpSpcOnRoadGrid) {
  const Graph g = GenerateRoadGrid(10, 10, 0.9, 0.05, 3);
  const VertexOrder order = HybridOrder(g, 3);
  EXPECT_EQ(BuildPspcIndex(g, order, Defaults()).index,
            BuildHpSpcIndex(g, order).index);
}

// The paper's Exp 2 claim: the index is *identical* regardless of the
// number of threads, because iteration d only reads iterations < d.
TEST(PspcBuilderTest, IndexIdenticalAcrossThreadCounts) {
  const Graph g = GenerateBarabasiAlbert(200, 4, 11);
  const VertexOrder order = DegreeOrder(g);
  PspcOptions base = Defaults();
  base.num_threads = 1;
  const auto reference = BuildPspcIndex(g, order, base);
  for (int threads : {2, 3, 4, 8}) {
    PspcOptions o = Defaults();
    o.num_threads = threads;
    EXPECT_EQ(BuildPspcIndex(g, order, o).index, reference.index)
        << threads << " threads";
  }
}

TEST(PspcBuilderTest, PushAndPullProduceSameIndex) {
  for (uint64_t seed : {2u, 9u}) {
    const Graph g = GenerateErdosRenyi(90, 250, seed);
    const VertexOrder order = DegreeOrder(g);
    PspcOptions pull = Defaults();
    pull.paradigm = Paradigm::kPull;
    PspcOptions push = Defaults();
    push.paradigm = Paradigm::kPush;
    EXPECT_EQ(BuildPspcIndex(g, order, pull).index,
              BuildPspcIndex(g, order, push).index)
        << "seed " << seed;
  }
}

TEST(PspcBuilderTest, LandmarkFilterNeverChangesTheIndex) {
  const Graph g = GenerateBarabasiAlbert(120, 3, 13);
  const VertexOrder order = DegreeOrder(g);
  PspcOptions with = Defaults();
  with.use_landmark_filter = true;
  with.num_landmarks = 16;
  PspcOptions without = Defaults();
  without.use_landmark_filter = false;
  const auto a = BuildPspcIndex(g, order, with);
  const auto b = BuildPspcIndex(g, order, without);
  EXPECT_EQ(a.index, b.index);
  // The filter only relocates pruning work.
  EXPECT_GT(a.stats.pruned_by_landmark, 0u);
  EXPECT_EQ(b.stats.pruned_by_landmark, 0u);
  EXPECT_EQ(a.stats.pruned_by_landmark + a.stats.pruned_by_query,
            b.stats.pruned_by_query);
}

TEST(PspcBuilderTest, AllSchedulesProduceSameIndex) {
  const Graph g = GenerateErdosRenyi(100, 300, 23);
  const VertexOrder order = DegreeOrder(g);
  PspcOptions s = Defaults();
  s.schedule = ScheduleKind::kStatic;
  PspcOptions d = Defaults();
  d.schedule = ScheduleKind::kDynamic;
  PspcOptions c = Defaults();
  c.schedule = ScheduleKind::kCostAware;
  const auto is = BuildPspcIndex(g, order, s).index;
  const auto id = BuildPspcIndex(g, order, d).index;
  const auto ic = BuildPspcIndex(g, order, c).index;
  EXPECT_EQ(is, id);
  EXPECT_EQ(id, ic);
}

// --------------------------------------------------------- Queries --

TEST(PspcBuilderTest, AllPairsMatchBfsOracle) {
  const Graph g = GenerateWattsStrogatz(80, 3, 0.2, 31);
  const auto ps = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  for (const auto& [s, t] : AllPairs(80)) {
    EXPECT_EQ(ps.index.Query(s, t), BfsSpcPair(g, s, t))
        << "pair (" << s << "," << t << ")";
  }
}

TEST(PspcBuilderTest, DisconnectedGraphTerminates) {
  const Graph g = MakeGraph(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  const auto ps = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  EXPECT_EQ(ps.index.Query(0, 6), (SpcResult{kInfSpcDistance, 0}));
  EXPECT_EQ(ps.index.Query(3, 4), (SpcResult{1, 1}));
}

TEST(PspcBuilderTest, SingleVertexGraph) {
  const Graph g = MakeGraph(1, {});
  const auto ps = BuildPspcIndex(g, IdentityOrder(1), Defaults());
  EXPECT_EQ(ps.index.TotalEntries(), 1u);
  EXPECT_EQ(ps.index.Query(0, 0), (SpcResult{0, 1}));
}

TEST(PspcBuilderTest, EmptyEdgeSetGraph) {
  const Graph g = MakeGraph(5, {});
  const auto ps = BuildPspcIndex(g, IdentityOrder(5), Defaults());
  EXPECT_EQ(ps.index.TotalEntries(), 5u);  // self labels only
  EXPECT_EQ(ps.index.Query(1, 3), (SpcResult{kInfSpcDistance, 0}));
}

TEST(PspcBuilderTest, WeightedCountsMatchHpSpcWeighted) {
  const Graph g = GenerateErdosRenyi(50, 120, 37);
  const VertexOrder order = DegreeOrder(g);
  std::vector<Count> weights(50);
  for (VertexId v = 0; v < 50; ++v) weights[v] = 1 + v % 3;
  PspcOptions o = Defaults();
  o.vertex_weights = weights;
  EXPECT_EQ(BuildPspcIndex(g, order, o).index,
            BuildHpSpcIndex(g, order, weights).index);
}

// ------------------------------------------------------------ Stats --

TEST(PspcBuilderTest, LevelHistogramSumsToTotal) {
  const Graph g = GenerateBarabasiAlbert(100, 3, 41);
  const auto ps = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  const size_t level_sum =
      std::accumulate(ps.stats.entries_per_level.begin(),
                      ps.stats.entries_per_level.end(), size_t{0});
  EXPECT_EQ(level_sum, ps.stats.total_entries);
  EXPECT_EQ(ps.stats.total_entries, ps.index.TotalEntries());
}

TEST(PspcBuilderTest, IterationsBoundedByDiameter) {
  const Graph g = GenerateRoadGrid(8, 8, 1.0, 0.0, 1);
  const auto ps = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  // Level d exists only if some trough shortest path has length d <= D.
  EXPECT_LE(ps.stats.num_iterations, ExactDiameter(g) + 1u);
  EXPECT_GE(ps.stats.num_iterations, 2u);  // at least distance-1 labels
}

TEST(PspcBuilderTest, PruningFunnelIsConsistent) {
  const Graph g = GenerateErdosRenyi(120, 400, 43);
  const auto ps = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  // Candidates either die at a pruning stage or become labels
  // (self labels are not candidates).
  EXPECT_EQ(ps.stats.candidates_after_merge,
            ps.stats.pruned_by_landmark + ps.stats.pruned_by_query +
                (ps.stats.total_entries - g.NumVertices()));
}

TEST(PspcBuilderTest, DeterministicAcrossRepeatedRuns) {
  const Graph g = GenerateBarabasiAlbert(150, 3, 47);
  const VertexOrder order = DegreeOrder(g);
  const auto a = BuildPspcIndex(g, order, Defaults());
  const auto b = BuildPspcIndex(g, order, Defaults());
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.stats.total_entries, b.stats.total_entries);
  EXPECT_EQ(a.stats.candidates_after_merge, b.stats.candidates_after_merge);
}

}  // namespace
}  // namespace pspc
