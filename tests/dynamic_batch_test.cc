// Coalesced ApplyBatch: planner semantics (atomic validation,
// canceling-pair coalescing), the batched ≡ sequential ≡ BFS-oracle
// equivalence across randomized mixed batches with overlapping
// affected hubs, and the disjoint-region parallel wave runner (the
// TSan target for the concurrent hub re-run path).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/batch_planner.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

BuildOptions SmallBuildOptions() {
  BuildOptions options;
  options.num_landmarks = 4;
  return options;
}

DynamicOptions NoRebuildOptions(int num_threads = 0,
                                bool parallel = true) {
  DynamicOptions options;
  options.rebuild_threshold = 1e18;  // repair-only
  options.rebuild_options = SmallBuildOptions();
  options.num_threads = num_threads;
  options.parallel_batch_repair = parallel;
  return options;
}

/// Mirror of the evolving edge set, for oracles and batch sampling.
class EdgeMirror {
 public:
  explicit EdgeMirror(const Graph& g) : n_(g.NumVertices()) {
    for (VertexId u = 0; u < n_; ++u) {
      for (const VertexId v : g.Neighbors(u)) {
        if (u < v) edges_.insert({u, v});
      }
    }
  }

  void Apply(const EdgeUpdate& up) {
    const auto key = std::minmax(up.u, up.v);
    if (up.kind == EdgeUpdateKind::kInsert) {
      edges_.insert(key);
    } else {
      edges_.erase(key);
    }
  }

  Graph Materialize() const {
    GraphBuilder builder(n_);
    for (const auto& [u, v] : edges_) builder.AddEdge(u, v);
    return builder.Build();
  }

  /// Random mixed batch, valid against the mirrored state (and applied
  /// to it): `deletes` existing edges and `inserts` absent pairs,
  /// interleaved. Deleting near-random edges of one graph produces
  /// heavily overlapping affected regions by construction.
  EdgeUpdateBatch SampleBatch(Rng& rng, size_t size) {
    EdgeUpdateBatch batch;
    for (size_t i = 0; i < size; ++i) {
      const bool remove = !edges_.empty() && rng.NextBool(0.5);
      EdgeUpdate up;
      if (remove) {
        auto it = edges_.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(edges_.size())));
        up = {it->first, it->second, EdgeUpdateKind::kDelete};
      } else {
        while (true) {
          const auto u = static_cast<VertexId>(rng.NextBounded(n_));
          const auto v = static_cast<VertexId>(rng.NextBounded(n_));
          if (u != v && !edges_.contains(std::minmax(u, v))) {
            up = {std::min(u, v), std::max(u, v), EdgeUpdateKind::kInsert};
            break;
          }
        }
      }
      batch.Add(up);
      Apply(up);
    }
    return batch;
  }

  size_t NumEdges() const { return edges_.size(); }

 private:
  VertexId n_;
  std::set<std::pair<VertexId, VertexId>> edges_;
};

// --------------------------------------------------------- planner

bool NeverCalled(VertexId, VertexId) {
  ADD_FAILURE() << "membership oracle queried unexpectedly";
  return false;
}

TEST(BatchPlannerTest, CoalescesCancelingPairs) {
  EdgeUpdateBatch batch;
  batch.Insert(1, 2);
  batch.Delete(2, 1);  // cancels the insert (order-normalized)
  batch.Insert(3, 4);
  batch.Insert(3, 4);  // duplicate: redundant, not an error
  batch.Delete(5, 6);
  batch.Insert(5, 6);  // delete + reinsert: round trip, no net change
  const auto plan = PlanBatch(batch, [](VertexId u, VertexId v) {
    return u == 5 && v == 6;  // only {5,6} exists up front
  });
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().net_insertions,
            (std::vector<std::pair<VertexId, VertexId>>{{3, 4}}));
  EXPECT_TRUE(plan.value().net_deletions.empty());
  EXPECT_EQ(plan.value().coalesced_updates, 5u);
}

TEST(BatchPlannerTest, RejectsMissingDeleteUpFront) {
  EdgeUpdateBatch batch;
  batch.Insert(0, 1);
  batch.Delete(2, 3);  // never existed
  const auto plan =
      PlanBatch(batch, [](VertexId, VertexId) { return false; });
  EXPECT_EQ(plan.status().code(), Status::Code::kNotFound);
  // The message names the offending update so callers can pinpoint it.
  EXPECT_NE(plan.status().ToString().find("update 1"), std::string::npos);

  // A delete is valid when an earlier insert of the batch created the
  // edge; a second delete of it is not.
  EdgeUpdateBatch redelete;
  redelete.Insert(2, 3);
  redelete.Delete(2, 3);
  redelete.Delete(2, 3);
  EXPECT_EQ(PlanBatch(redelete, [](VertexId, VertexId) { return false; })
                .status()
                .code(),
            Status::Code::kNotFound);
}

TEST(BatchPlannerTest, EmptyBatchNeverTouchesTheOracle) {
  const auto plan = PlanBatch(EdgeUpdateBatch{}, NeverCalled);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().Empty());
}

// ------------------------------------------------- index batch semantics

TEST(ApplyBatchTest, AtomicOnMissingDelete) {
  const Graph g = GenerateCycle(8);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());
  const uint64_t gen0 = index.Generation();

  EdgeUpdateBatch bad;
  bad.Insert(0, 4);
  bad.Delete(1, 5);  // missing: the whole batch must reject up front
  EXPECT_EQ(index.ApplyBatch(bad).code(), Status::Code::kNotFound);
  EXPECT_EQ(index.NumEdges(), 8u);
  EXPECT_FALSE(index.HasEdge(0, 4));
  EXPECT_EQ(index.Generation(), gen0);
  for (const auto& [s, t] : testing::AllPairs(8)) {
    EXPECT_EQ(index.Query(s, t), BfsSpcPair(g, s, t));
  }
}

TEST(ApplyBatchTest, CancelingPairsAreNoOps) {
  const Graph g = GenerateCycle(8);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());
  const uint64_t gen0 = index.Generation();

  EdgeUpdateBatch noop;
  noop.Insert(0, 4);
  noop.Delete(0, 4);   // cancels
  noop.Insert(0, 1);   // redundant: the cycle already has it
  noop.Delete(2, 3);
  noop.Insert(2, 3);   // round trip
  ASSERT_TRUE(index.ApplyBatch(noop).ok());
  EXPECT_EQ(index.Generation(), gen0);  // nothing net: nothing published
  EXPECT_EQ(index.NumEdges(), 8u);
  EXPECT_EQ(index.Stats().updates_coalesced, 5u);
  EXPECT_EQ(index.Stats().TotalHubRuns(), 0u);  // the planner saw through it
  for (const auto& [s, t] : testing::AllPairs(8)) {
    EXPECT_EQ(index.Query(s, t), BfsSpcPair(g, s, t));
  }
}

TEST(ApplyBatchTest, OneGenerationBumpPerBatch) {
  const Graph g = GenerateErdosRenyi(32, 70, 7);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());
  EdgeMirror mirror(g);
  Rng rng(99);
  const uint64_t gen0 = index.Generation();
  const EdgeUpdateBatch batch = mirror.SampleBatch(rng, 12);
  ASSERT_TRUE(index.ApplyBatch(batch).ok());
  EXPECT_EQ(index.Generation(), gen0 + 1);
}

// ------------------------------------------------- oracle equivalence

struct BatchCase {
  std::string name;
  Graph (*make)();
  uint64_t seed;
  int num_threads;      // for the batched index
  bool parallel;
};

Graph MakeEr() { return GenerateErdosRenyi(48, 110, 21); }
Graph MakeBa() { return GenerateBarabasiAlbert(48, 3, 22); }
Graph MakeGrid() { return GenerateRoadGrid(7, 7, 0.9, 0.1, 23); }
Graph MakeSparse() { return GenerateErdosRenyi(48, 40, 24); }  // fragmented
Graph MakeLadder() { return GenerateDiamondLadder(5, 3); }     // tie-heavy

const BatchCase kBatchCases[] = {
    {"erdos_renyi_seq", &MakeEr, 601, 1, false},
    {"erdos_renyi_par", &MakeEr, 601, 4, true},
    {"barabasi_albert_seq", &MakeBa, 602, 1, false},
    {"barabasi_albert_par", &MakeBa, 602, 4, true},
    {"road_grid_par", &MakeGrid, 603, 4, true},
    {"sparse_fragmented_par", &MakeSparse, 604, 4, true},
    {"diamond_ladder_par", &MakeLadder, 605, 4, true},
};

class BatchOracleTest : public ::testing::TestWithParam<int> {
 protected:
  const BatchCase& Case() const { return kBatchCases[GetParam()]; }
};

// The central acceptance property of the coalesced path: applying a
// mixed batch at once answers exactly like applying it update by
// update, and both match a BFS on the final graph — across graph
// families, with the parallel wave runner on and off. Regions of the
// batch's deletions overlap heavily (they come from one 48-vertex
// graph), so hub coalescing and multi-region escalation are exercised,
// not just the disjoint fast path.
TEST_P(BatchOracleTest, BatchedEqualsSequentialEqualsOracle) {
  const Graph start = Case().make();
  DynamicSpcIndex batched(start, SmallBuildOptions(),
                          NoRebuildOptions(Case().num_threads,
                                           Case().parallel));
  DynamicSpcIndex sequential(start, SmallBuildOptions(), NoRebuildOptions());
  EdgeMirror mirror(start);
  Rng rng(Case().seed);

  for (int round = 0; round < 6; ++round) {
    const size_t size = round < 3 ? 8 : 20;  // small and larger batches
    const EdgeUpdateBatch batch = mirror.SampleBatch(rng, size);
    ASSERT_TRUE(batched.ApplyBatch(batch).ok())
        << Case().name << " round " << round;
    for (const EdgeUpdate& up : batch) {
      // Sequential reference: strict single-update semantics, which
      // SampleBatch guarantees are valid.
      ASSERT_TRUE(sequential.Apply(up).ok())
          << Case().name << " round " << round;
    }
    const Graph current = mirror.Materialize();
    ASSERT_EQ(batched.NumEdges(), mirror.NumEdges());
    for (const auto& [s, t] : testing::AllPairs(current.NumVertices())) {
      const SpcResult oracle = BfsSpcPair(current, s, t);
      ASSERT_EQ(batched.Query(s, t), oracle)
          << Case().name << " round " << round << " batched pair (" << s
          << "," << t << ")";
      ASSERT_EQ(sequential.Query(s, t), oracle)
          << Case().name << " round " << round << " sequential pair (" << s
          << "," << t << ")";
    }
  }
  EXPECT_EQ(batched.Stats().rebuilds, 0u);
  // The point of coalescing: the batched index never launches more
  // per-hub repairs than update-by-update application.
  EXPECT_LE(batched.Stats().TotalHubRuns(),
            sequential.Stats().TotalHubRuns());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BatchOracleTest,
    ::testing::Range(0, static_cast<int>(std::size(kBatchCases))),
    [](const ::testing::TestParamInfo<int>& info) {
      return kBatchCases[info.param].name;
    });

// ------------------------------------------------- parallel wave path

/// Several disconnected communities: deletions in different
/// communities have disjoint affected regions, so the wave runner
/// executes them concurrently (the TSan target — run with
/// OMP_NUM_THREADS=1 under `-fsanitize=thread`, the std::thread pool
/// is fully instrumented).
Graph MakeCommunities(VertexId communities, VertexId size, EdgeId edges,
                      uint64_t seed) {
  GraphBuilder builder(communities * size);
  for (VertexId c = 0; c < communities; ++c) {
    const Graph part = GenerateErdosRenyi(size, edges, seed + c);
    for (VertexId u = 0; u < size; ++u) {
      for (const VertexId v : part.Neighbors(u)) {
        if (u < v) builder.AddEdge(c * size + u, c * size + v);
      }
    }
  }
  return builder.Build();
}

TEST(ParallelWaveTest, DisjointRegionsRepairConcurrently) {
  const Graph start = MakeCommunities(6, 16, 34, 41);
  DynamicSpcIndex index(start, SmallBuildOptions(),
                        NoRebuildOptions(/*num_threads=*/4));
  EdgeMirror mirror(start);
  Rng rng(4242);

  for (int round = 0; round < 4; ++round) {
    // One deletion per community: pairwise disjoint affected regions.
    EdgeUpdateBatch batch;
    std::vector<std::pair<VertexId, VertexId>> live;
    const Graph current = mirror.Materialize();
    for (VertexId c = 0; c < 6; ++c) {
      live.clear();
      for (VertexId u = c * 16; u < (c + 1) * 16; ++u) {
        for (const VertexId v : current.Neighbors(u)) {
          if (u < v) live.push_back({u, v});
        }
      }
      ASSERT_FALSE(live.empty());
      const auto [u, v] = live[rng.NextBounded(live.size())];
      batch.Delete(u, v);
      mirror.Apply({u, v, EdgeUpdateKind::kDelete});
    }
    ASSERT_TRUE(index.ApplyBatch(batch).ok()) << "round " << round;

    const Graph now = mirror.Materialize();
    for (const auto& [s, t] : testing::AllPairs(now.NumVertices())) {
      ASSERT_EQ(index.Query(s, t), BfsSpcPair(now, s, t))
          << "round " << round << " pair (" << s << "," << t << ")";
    }
  }
  // The disjoint communities must actually have exercised the
  // staged-write wave path, not just the sequential fallback.
  EXPECT_GT(index.Stats().parallel_waves, 0u);
  EXPECT_GT(index.Stats().parallel_hub_runs, 0u);
}

TEST(ParallelWaveTest, OverlappingRegionsStayExact) {
  // The adversarial counterpart: deletions clustered in one dense
  // graph, so waves are short, claims collide, and the abort/defer
  // fixup runs. Exactness must be independent of thread timing.
  const Graph start = GenerateWattsStrogatz(64, 4, 0.3, 51);
  DynamicSpcIndex index(start, SmallBuildOptions(),
                        NoRebuildOptions(/*num_threads=*/4));
  EdgeMirror mirror(start);
  Rng rng(5151);

  for (int round = 0; round < 5; ++round) {
    const EdgeUpdateBatch batch = mirror.SampleBatch(rng, 14);
    ASSERT_TRUE(index.ApplyBatch(batch).ok());
    const Graph now = mirror.Materialize();
    for (const auto& [s, t] : testing::AllPairs(now.NumVertices())) {
      ASSERT_EQ(index.Query(s, t), BfsSpcPair(now, s, t))
          << "round " << round << " pair (" << s << "," << t << ")";
    }
  }
}

}  // namespace
}  // namespace pspc
