#ifndef PSPC_SRC_GRAPH_GRAPH_H_
#define PSPC_SRC_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "src/common/types.h"

/// Immutable CSR (compressed sparse row) representation of an
/// unweighted, undirected, simple graph — the substrate every algorithm
/// in the library runs on (paper §II: G = (V, E), undirected,
/// unweighted).
namespace pspc {

class Graph {
 public:
  /// Empty graph (0 vertices).
  Graph() : offsets_(1, 0) {}

  /// Constructs from prebuilt CSR arrays. `offsets` has `n + 1` entries;
  /// `neighbors[offsets[v] .. offsets[v+1])` are `v`'s neighbors sorted
  /// ascending. Invariants are validated with PSPC_CHECK in debug use;
  /// prefer GraphBuilder, which establishes them from arbitrary input.
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of vertices `n`.
  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges `m` (each edge stored twice internally).
  EdgeId NumEdges() const { return neighbors_.size() / 2; }

  /// Degree of `v`.
  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of `v`, sorted ascending by id.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// True iff `(u, v)` is an edge. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Average degree `2m / n`; 0 for the empty graph.
  double AverageDegree() const;

  /// Largest degree in the graph; 0 for the empty graph.
  VertexId MaxDegree() const;

  /// Raw CSR arrays (for serialization and tests).
  const std::vector<EdgeId>& Offsets() const { return offsets_; }
  const std::vector<VertexId>& NeighborArray() const { return neighbors_; }

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<EdgeId> offsets_;      // n + 1 entries
  std::vector<VertexId> neighbors_;  // 2m entries
};

}  // namespace pspc

#endif  // PSPC_SRC_GRAPH_GRAPH_H_
