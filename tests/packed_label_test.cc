#include "src/label/packed_label.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/label_entry.h"

namespace pspc {
namespace {

std::vector<LabelEntry> Decode(const PackedBlockView& view) {
  std::vector<LabelEntry> out;
  view.DecodeAll(&out);
  return out;
}

void ExpectRoundTrip(const std::vector<LabelEntry>& entries,
                     const std::string& context) {
  std::vector<uint8_t> bytes;
  const size_t written = AppendPackedBlock(
      std::span<const LabelEntry>(entries.data(), entries.size()), &bytes);
  ASSERT_EQ(written, bytes.size()) << context;
  const PackedBlockView view(bytes.data());
  ASSERT_EQ(view.NumEntries(), entries.size()) << context;
  ASSERT_EQ(view.SizeBytes(), bytes.size()) << context;
  EXPECT_EQ(Decode(view), entries) << context;

  // Point lookups agree with the raw binary search for present hubs
  // and for probes straddling every entry boundary.
  const std::span<const LabelEntry> raw(entries.data(), entries.size());
  for (const LabelEntry& e : entries) {
    for (const Rank probe :
         {e.hub_rank, e.hub_rank == 0 ? e.hub_rank : e.hub_rank - 1,
          e.hub_rank + 1}) {
      Distance dist = 0;
      Count count = 0;
      const bool found = view.FindHub(probe, &dist, &count);
      const size_t at = FindHubEntry(raw, probe);
      ASSERT_EQ(found, at != raw.size()) << context << " probe " << probe;
      if (found) {
        EXPECT_EQ(dist, raw[at].dist) << context << " probe " << probe;
        EXPECT_EQ(count, raw[at].count) << context << " probe " << probe;
      }
    }
  }
}

TEST(PackedBlockTest, EmptyLabel) {
  ExpectRoundTrip({}, "empty");
  std::vector<uint8_t> bytes;
  AppendPackedBlock({}, &bytes);
  const PackedBlockView view(bytes.data());
  Distance dist;
  Count count;
  EXPECT_FALSE(view.FindHub(0, &dist, &count));
  EXPECT_EQ(view.NumGroups(), 0u);
}

TEST(PackedBlockTest, GroupBoundarySizes) {
  // 1, 7, 8, 9, 16, 17: partial groups, exact groups, and the first
  // entry of a fresh group (whose rank lives in the skip slot, not the
  // delta stream).
  for (const uint32_t n : {1u, 7u, 8u, 9u, 16u, 17u}) {
    std::vector<LabelEntry> entries;
    for (uint32_t i = 0; i < n; ++i) {
      entries.push_back({3 * i + 1, static_cast<Distance>(i % 7),
                         static_cast<Count>(i) + 1});
    }
    ExpectRoundTrip(entries, "n=" + std::to_string(n));
  }
}

TEST(PackedBlockTest, RankGapsWiderThanDeltaLanes) {
  // Deltas that overflow the 1-byte lane (>255) and the 2-byte lane
  // (>65535) must promote their group — and only their group — to a
  // wider lane while still round-tripping exactly.
  std::vector<LabelEntry> entries;
  Rank rank = 0;
  const uint32_t gaps[] = {1,      255,    256,        65535,
                           65536,  1 << 20, 1u << 30,  7};
  for (const uint32_t gap : gaps) {
    rank += gap;
    entries.push_back({rank, 2, 5});
  }
  ExpectRoundTrip(entries, "wide-gaps");
}

TEST(PackedBlockTest, MaxRankAndInfDistance) {
  // The largest encodable values in every field: rank near the u32
  // ceiling, the kInfDistance (0xFFFF) sentinel, zero counts.
  std::vector<LabelEntry> entries = {
      {0, 0, 1},
      {std::numeric_limits<Rank>::max() - 1, kInfDistance, 0},
  };
  ExpectRoundTrip(entries, "extremes");
}

TEST(PackedBlockTest, SaturatedCountsUseEscapeLane) {
  // kSaturatedCount only fits the 8-byte escape lane; mixing it with
  // tiny counts in one group forces the whole group wide and must stay
  // bit-exact.
  std::vector<LabelEntry> entries;
  for (uint32_t i = 0; i < 12; ++i) {
    entries.push_back({i * 10, static_cast<Distance>(i),
                       i % 3 == 0 ? kSaturatedCount : Count{1} << (5 * i % 60)});
  }
  ExpectRoundTrip(entries, "saturated");
}

TEST(PackedBlockTest, RandomizedAdversarialRoundTrip) {
  Rng rng(20260808);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = rng.NextBounded(40);
    std::vector<LabelEntry> entries;
    Rank rank = static_cast<Rank>(rng.NextBounded(1000));
    for (size_t i = 0; i < n; ++i) {
      LabelEntry e;
      e.hub_rank = rank;
      // Gap distribution with heavy tails so every delta lane fires.
      const int lane = static_cast<int>(rng.NextBounded(3));
      const uint32_t max_gap = lane == 0 ? 200 : lane == 1 ? 60000 : 1u << 24;
      rank += 1 + static_cast<uint32_t>(rng.NextBounded(max_gap));
      e.dist = rng.NextBool(0.1)
                   ? kInfDistance
                   : static_cast<Distance>(rng.NextBounded(1 << 14));
      e.count = rng.NextBool(0.1) ? kSaturatedCount : rng.Next();
      if (rng.NextBool(0.5)) e.count = rng.NextBounded(256);
      entries.push_back(e);
    }
    ExpectRoundTrip(entries, "trial " + std::to_string(trial));
  }
}

TEST(PackedLabelMapTest, EncodesWholeIndexExactlyAndSmaller) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 42);
  BuildOptions options;
  options.num_landmarks = 8;
  const SpcIndex index = BuildIndex(g, options).index;
  const PackedLabelMap packed = PackedLabelMap::Encode(index.LabelMap());

  ASSERT_EQ(packed.NumVertices(), index.NumVertices());
  EXPECT_EQ(packed.TotalEntries(), index.TotalEntries());
  size_t raw_bytes = 0;
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    const auto raw = index.Labels(v);
    raw_bytes += raw.size_bytes();
    const std::vector<LabelEntry> decoded = Decode(packed.Block(v));
    ASSERT_EQ(decoded.size(), raw.size()) << "vertex " << v;
    for (size_t i = 0; i < raw.size(); ++i) {
      ASSERT_EQ(decoded[i], raw[i]) << "vertex " << v << " entry " << i;
    }
  }
  // The point of the format: strictly fewer bytes than 16/entry raw.
  EXPECT_LT(packed.SizeBytes(), raw_bytes);
}

TEST(PackedLabelMapTest, BuilderMatchesEncode) {
  const Graph g = GenerateWattsStrogatz(120, 3, 0.2, 7);
  BuildOptions options;
  options.num_landmarks = 4;
  const SpcIndex index = BuildIndex(g, options).index;
  const PackedLabelMap encoded = PackedLabelMap::Encode(index.LabelMap());

  PackedLabelMap::Builder builder(index.NumVertices());
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    builder.Add(index.Labels(v));
  }
  const PackedLabelMap built = builder.Finish();

  ASSERT_EQ(built.NumVertices(), encoded.NumVertices());
  ASSERT_EQ(built.SizeBytes(), encoded.SizeBytes());
  for (VertexId v = 0; v < built.NumVertices(); ++v) {
    EXPECT_EQ(Decode(built.Block(v)), Decode(encoded.Block(v)))
        << "vertex " << v;
  }
}

}  // namespace
}  // namespace pspc
