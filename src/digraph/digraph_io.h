#ifndef PSPC_SRC_DIGRAPH_DIGRAPH_IO_H_
#define PSPC_SRC_DIGRAPH_DIGRAPH_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/digraph/digraph.h"

/// Directed edge-list loading — the same SNAP text dialect as
/// graph_io.h (`u v` per line, `#`/`%` comments), except each line is
/// one directed edge `u -> v` instead of being symmetrized.
namespace pspc {

/// Loads a directed edge-list text file, preserving numeric vertex ids
/// (`n = max id + 1`; gaps become isolated vertices). Duplicate lines
/// and self-loops are dropped, as everywhere in the directed module.
Result<DiGraph> LoadDirectedEdgeList(const std::string& path);

/// Parses directed edge-list text from a string.
Result<DiGraph> ParseDirectedEdgeList(const std::string& text);

}  // namespace pspc

#endif  // PSPC_SRC_DIGRAPH_DIGRAPH_IO_H_
