// Cross-layer observability: the registry-backed metrics must agree
// with the engine's own ServingCounters / the index's DynamicStats
// (both are fed the identical deltas at the identical sites), the
// lock-free Counters() read path must stay clean under a concurrent
// poller (the TSan job runs this file), and sampled traces must carry
// monotone stage timestamps through the pipeline.
//
// All OpenMP knobs are pinned to one thread — libgomp is not
// TSan-instrumented, and a team of one never spawns — so every thread
// TSan watches is one of ours.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "src/serve/serving_engine.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

BuildOptions SingleThreadBuild() {
  BuildOptions options;
  options.num_landmarks = 4;
  options.num_threads = 1;
  return options;
}

DynamicOptions RepairOnlyOptions(obs::MetricsRegistry* registry) {
  DynamicOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SingleThreadBuild();
  options.num_threads = 1;
  options.metrics = registry;
  return options;
}

std::unique_ptr<DynamicSpcIndex> MakeIndex(const Graph& graph,
                                           obs::MetricsRegistry* registry) {
  return std::make_unique<DynamicSpcIndex>(graph, SingleThreadBuild(),
                                           RepairOnlyOptions(registry));
}

uint64_t CounterValue(obs::MetricsRegistry& registry, const char* name) {
  return registry.GetCounter(name)->Value();
}

// ---------------------------------------------- registry <-> Counters

// A private registry fed by one engine must agree field-for-field with
// the engine's own ServingCounters after quiesce.
TEST(ServingMetricsTest, RegistryAgreesWithServingCounters) {
  const Graph graph = GenerateBarabasiAlbert(80, 3, 17);
  obs::MetricsRegistry registry;
  auto index = MakeIndex(graph, &registry);

  ServingOptions options;
  options.num_workers = 2;
  options.metrics = &registry;
  ServingEngine engine(index.get(), options);

  const QueryBatch queries = MakeRandomQueries(80, 64, 3);
  engine.SubmitBatch(queries).get();
  // Re-ask the same batch so the generation-tagged cache hits.
  engine.SubmitBatch(queries).get();

  EdgeUpdateBatch updates;
  updates.Delete(0, graph.Neighbors(0)[0]);
  ASSERT_TRUE(engine.ApplyUpdates(updates).ok());
  engine.SubmitBatch(queries).get();
  engine.Drain();

  const ServingCounters counters = engine.Counters();
  EXPECT_EQ(counters.queries_served, 3u * 64u);
  EXPECT_GT(counters.cache_hits, 0u);
  EXPECT_EQ(counters.updates_applied, 1u);
  EXPECT_EQ(counters.generations_published, 1u);

  EXPECT_EQ(CounterValue(registry, obs::kServeQueriesTotal),
            counters.queries_served);
  EXPECT_EQ(CounterValue(registry, obs::kServeMicroBatchesTotal),
            counters.micro_batches);
  EXPECT_EQ(CounterValue(registry, obs::kServeCacheHitsTotal),
            counters.cache_hits);
  EXPECT_EQ(CounterValue(registry, obs::kServeCacheMissesTotal),
            counters.cache_misses);
  EXPECT_EQ(CounterValue(registry, obs::kServeUpdatesAppliedTotal),
            counters.updates_applied);
  EXPECT_EQ(CounterValue(registry, obs::kServeGenerationsPublishedTotal),
            counters.generations_published);
  EXPECT_EQ(CounterValue(registry, obs::kServeSnapshotsReclaimedTotal),
            counters.snapshots_reclaimed);
  EXPECT_EQ(CounterValue(registry, obs::kServePublishCopiedVerticesTotal),
            counters.publish_copied_vertices_total);
  EXPECT_EQ(
      registry.GetGauge(obs::kServePublishedGeneration)->Value(),
      static_cast<int64_t>(engine.PublishedGeneration()));

  // The latency surfaces must have seen every query.
  EXPECT_EQ(registry.GetHistogram(obs::kServeQueryLatencyUs)->Count(),
            counters.queries_served);
  EXPECT_EQ(registry.GetHistogram(obs::kServeQueueWaitUs)->Count(),
            counters.queries_served);
  EXPECT_EQ(registry.GetHistogram(obs::kServeMicroBatchSize)->Count(),
            counters.micro_batches);
  EXPECT_EQ(registry.GetHistogram(obs::kServePublishUs)->Count(),
            counters.generations_published);
  // Cache-hit/merge split partitions the end-to-end histogram.
  EXPECT_EQ(
      registry.GetHistogram(obs::kServeQueryLatencyCacheHitUs)->Count() +
          registry.GetHistogram(obs::kServeQueryLatencyMergeUs)->Count(),
      counters.queries_served);
}

// Counters() and ToJson() are polled from a dedicated thread while
// loaders and a writer run — the regression test for the old
// mutex-guarded read path (TSan verifies no data race, the final
// assertions verify the poll never tears totals backwards).
TEST(ServingMetricsTest, PollingThreadDuringMixedWorkload) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 19);
  obs::MetricsRegistry registry;
  auto index = MakeIndex(graph, &registry);

  ServingOptions options;
  options.num_workers = 2;
  options.metrics = &registry;
  options.trace_sample_every_n = 4;
  ServingEngine engine(index.get(), options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> polls{0};
  std::thread poller([&] {
    uint64_t last_queries = 0;
    // relaxed: stop/progress flag only; thread join is the sync point.
    while (!stop.load(std::memory_order_relaxed)) {
      const ServingCounters counters = engine.Counters();
      // Monotone under concurrent writers: a sharded read may trail,
      // never rewind.
      EXPECT_GE(counters.queries_served, last_queries);
      last_queries = counters.queries_served;
      const std::string json = engine.Metrics().ToJson();
      EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::thread loader([&] {
    for (int round = 0; round < 20; ++round) {
      engine.SubmitBatch(MakeRandomQueries(60, 16, round)).get();
    }
  });

  // Writer: close and reopen one live edge, a guaranteed-valid pair.
  const VertexId u = 0;
  const VertexId v = graph.Neighbors(0)[0];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        engine.ApplyUpdate({u, v, EdgeUpdateKind::kDelete}).ok());
    ASSERT_TRUE(
        engine.ApplyUpdate({u, v, EdgeUpdateKind::kInsert}).ok());
  }

  loader.join();
  engine.Drain();
  // relaxed: stop/progress flag only; thread join is the sync point.
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  EXPECT_GT(polls.load(), 0u);
  const ServingCounters counters = engine.Counters();
  EXPECT_EQ(counters.queries_served, 20u * 16u);
  EXPECT_EQ(counters.updates_applied, 8u);
  EXPECT_EQ(CounterValue(registry, obs::kServeQueriesTotal),
            counters.queries_served);
}

// ------------------------------------------------------ dynamic layer

// The dynamic.* registry mirror is delta-fed from DynamicStats at the
// tail of every public mutation; after any sequence the two must be
// identical.
TEST(DynamicMetricsTest, RegistryMirrorsDynamicStats) {
  const Graph graph = GenerateBarabasiAlbert(70, 3, 23);
  obs::MetricsRegistry registry;
  auto index = MakeIndex(graph, &registry);

  Rng rng(7);
  const auto next_missing_edge = [&] {
    while (true) {
      const auto u = static_cast<VertexId>(rng.NextBounded(70));
      const auto v = static_cast<VertexId>(rng.NextBounded(70));
      if (u != v && !index->HasEdge(u, v)) return std::make_pair(u, v);
    }
  };
  for (size_t i = 0; i < 6; ++i) {
    const auto [u, v] = next_missing_edge();
    ASSERT_TRUE(index->InsertEdge(u, v).ok());
  }
  ASSERT_TRUE(index->DeleteEdge(0, graph.Neighbors(0)[0]).ok());

  // Two fresh insertions so the batch plans non-empty (net size 2:
  // the coalesced path, one plan + one repair sample).
  EdgeUpdateBatch batch;
  const auto [a1, b1] = next_missing_edge();
  batch.Insert(a1, b1);
  auto [a2, b2] = next_missing_edge();
  while (std::minmax(a2, b2) == std::minmax(a1, b1)) {
    std::tie(a2, b2) = next_missing_edge();
  }
  batch.Insert(a2, b2);
  ASSERT_TRUE(index->ApplyBatch(batch).ok());

  const DynamicStats& stats = index->Stats();
  EXPECT_EQ(CounterValue(registry, obs::kDynamicInsertionsAppliedTotal),
            stats.insertions_applied);
  EXPECT_EQ(CounterValue(registry, obs::kDynamicDeletionsAppliedTotal),
            stats.deletions_applied);
  EXPECT_EQ(CounterValue(registry, obs::kDynamicBatchesAppliedTotal),
            stats.batches_applied);
  EXPECT_EQ(CounterValue(registry, obs::kDynamicResumedBfsRunsTotal),
            stats.resumed_bfs_runs);
  EXPECT_EQ(CounterValue(registry, obs::kDynamicFullHubRepairsTotal),
            stats.affected_hubs);
  EXPECT_EQ(CounterValue(registry, obs::kDynamicEntriesInsertedTotal),
            stats.entries_inserted);
  EXPECT_EQ(CounterValue(registry, obs::kDynamicEntriesErasedTotal),
            stats.entries_erased);
  EXPECT_EQ(registry.GetGauge(obs::kDynamicGeneration)->Value(),
            static_cast<int64_t>(index->Generation()));
  EXPECT_EQ(registry.GetGauge(obs::kDynamicBaseEntries)->Value(),
            static_cast<int64_t>(index->BaseIndex().TotalEntries()));
  // One repair-latency sample per mutation (6 inserts + 1 delete + 1
  // batch).
  EXPECT_EQ(registry.GetHistogram(obs::kDynamicRepairUs)->Count(), 8u);
  EXPECT_EQ(registry.GetHistogram(obs::kDynamicPlanUs)->Count(), 1u);
}

// ------------------------------------------------------------- tracing

TEST(ServingMetricsTest, SampledTracesCarryMonotoneTimestamps) {
  const Graph graph = GenerateBarabasiAlbert(50, 2, 29);
  obs::MetricsRegistry registry;
  auto index = MakeIndex(graph, &registry);

  ServingOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  options.trace_sample_every_n = 1;  // trace everything
  options.slow_trace_us = 0.0;       // ...and every trace is "slow"
  options.slow_trace_capacity = 256;
  ServingEngine engine(index.get(), options);

  const QueryBatch queries = MakeRandomQueries(50, 32, 5);
  engine.SubmitBatch(queries).get();
  engine.Drain();

  const obs::TraceCollector& traces = engine.Traces();
  EXPECT_EQ(traces.TracesRecorded(), 32u);
  EXPECT_EQ(traces.SlowTraces(), 32u);
  EXPECT_EQ(CounterValue(registry, obs::kServeTracesSampledTotal), 32u);
  EXPECT_EQ(CounterValue(registry, obs::kServeTracesSlowTotal), 32u);

  for (const obs::QueryTrace& trace : traces.SlowTraceLog()) {
    EXPECT_GT(trace.trace_id, 0u);
    EXPECT_LT(trace.s, 50u);
    EXPECT_LT(trace.t, 50u);
    EXPECT_GT(trace.enqueue_ns, 0);
    EXPECT_GE(trace.dequeue_ns, trace.enqueue_ns);
    EXPECT_GE(trace.merge_done_ns, trace.dequeue_ns);
    EXPECT_GE(trace.reply_ns, trace.merge_done_ns);
    EXPECT_EQ(trace.generation, engine.PublishedGeneration());
  }
}

TEST(ServingMetricsTest, TracingOffByDefaultCostsNothing) {
  const Graph graph = GenerateBarabasiAlbert(40, 2, 31);
  obs::MetricsRegistry registry;
  auto index = MakeIndex(graph, &registry);

  ServingOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  ServingEngine engine(index.get(), options);
  engine.SubmitBatch(MakeRandomQueries(40, 16, 6)).get();
  engine.Drain();

  EXPECT_EQ(engine.Traces().TracesRecorded(), 0u);
  EXPECT_EQ(CounterValue(registry, obs::kServeTracesSampledTotal), 0u);
}

}  // namespace
}  // namespace pspc
