#include "src/serve/snapshot_manager.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pspc {

SnapshotManager::SnapshotManager(std::unique_ptr<const IndexSnapshot> initial)
    : current_(initial.release()) {
  PSPC_CHECK(current_.load(std::memory_order_relaxed) != nullptr);
}

SnapshotManager::~SnapshotManager() {
  PSPC_CHECK_MSG(epochs_.ActiveReaders() == 0,
                 "SnapshotManager destroyed with pinned readers");
  delete current_.load(std::memory_order_relaxed);
  for (const Retired& r : retired_) delete r.snapshot;
}

SnapshotRef SnapshotManager::Acquire() const {
  // Pin first, then load: with both operations seq_cst, a writer whose
  // post-swap slot scan misses this pin is guaranteed the load below
  // observed the post-swap pointer (see epoch_manager.h).
  const size_t slot = epochs_.Enter();
  const IndexSnapshot* snapshot = current_.load(std::memory_order_seq_cst);
  return SnapshotRef(&epochs_, slot, snapshot);
}

void SnapshotManager::Publish(std::unique_ptr<const IndexSnapshot> next) {
  PSPC_CHECK(next != nullptr);
  copied_last_ = next->CopiedVertices();
  copied_total_ += copied_last_;
  const IndexSnapshot* old =
      current_.exchange(next.release(), std::memory_order_seq_cst);
  // Swap before advancing: any reader that still holds `old` pinned at
  // an epoch read before this publish, i.e. strictly below the retire
  // epoch recorded here.
  const uint64_t retire_epoch = epochs_.AdvanceEpoch();
  retired_.push_back({old, retire_epoch});
  Reclaim();
}

void SnapshotManager::Reclaim() {
  // kNoActiveReader compares greater than every retire epoch, so an
  // idle reader side drains the whole list.
  const uint64_t min_active = epochs_.MinActiveEpoch();
  auto dead = std::partition(
      retired_.begin(), retired_.end(),
      [min_active](const Retired& r) { return r.epoch > min_active; });
  for (auto it = dead; it != retired_.end(); ++it) {
    delete it->snapshot;
    ++reclaimed_;
  }
  retired_.erase(dead, retired_.end());
}

}  // namespace pspc
