#ifndef PSPC_SRC_CORE_BUILD_OPTIONS_H_
#define PSPC_SRC_CORE_BUILD_OPTIONS_H_

#include <string>

#include "src/common/types.h"
#include "src/order/hybrid_order.h"

/// Knobs for index construction. Every axis the paper ablates (Exp 5-7)
/// is a field here: ordering scheme, propagation paradigm, schedule
/// plan, landmark filtering.
namespace pspc {

/// Which construction algorithm to run.
enum class Algorithm {
  kHpSpc,  ///< sequential state of the art (SIGMOD'20 baseline)
  kPspc,   ///< the paper's parallel distance-iteration algorithm
};

/// Vertex ordering schemes of paper §III-G.
enum class OrderingScheme {
  kDegree,           ///< descending degree (social networks)
  kSignificantPath,  ///< sequential significant-path scheme
  kRoadNetwork,      ///< tree-decomposition / min-degree elimination
  kHybrid,           ///< core by degree, fringe by elimination (delta)
  kIdentity,         ///< vertex id order (tests / worst-case baseline)
};

/// Label propagation paradigms of paper §III-E.
enum class Paradigm {
  kPull,  ///< each vertex gathers neighbors' level-(d-1) labels
  kPush,  ///< each vertex scatters its level-(d-1) labels to neighbors
};

/// Schedule plans of paper §III-F.
enum class ScheduleKind {
  kStatic,     ///< contiguous node-order ranges per thread
  kDynamic,    ///< dynamic chunk self-scheduling
  kCostAware,  ///< dynamic over vertices sorted by estimated cost
};

struct BuildOptions {
  Algorithm algorithm = Algorithm::kPspc;
  OrderingScheme ordering = OrderingScheme::kDegree;
  /// Degree threshold separating core from fringe for kHybrid (Exp 6).
  VertexId hybrid_delta = kDefaultHybridDelta;
  Paradigm paradigm = Paradigm::kPull;
  ScheduleKind schedule = ScheduleKind::kCostAware;
  /// OpenMP threads; <= 0 means all available. HP-SPC ignores this
  /// (it is inherently sequential — the paper's point).
  int num_threads = 0;
  /// Landmark distance tables built from the top-ranked vertices
  /// (paper §III-H; default 100 as in the paper's experiments; capped
  /// at n). 0 disables with use_landmark_filter.
  uint32_t num_landmarks = 100;
  bool use_landmark_filter = true;
};

std::string ToString(Algorithm a);
std::string ToString(OrderingScheme s);
std::string ToString(Paradigm p);
std::string ToString(ScheduleKind k);

}  // namespace pspc

#endif  // PSPC_SRC_CORE_BUILD_OPTIONS_H_
