#ifndef PSPC_SRC_BASELINE_BFS_SPC_H_
#define PSPC_SRC_BASELINE_BFS_SPC_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Index-free shortest-path counting oracles.
///
/// These are the correctness ground truth for every labeling algorithm
/// in the library: a single-source BFS that accumulates path counts
/// level by level (the forward phase of Brandes' algorithm), plus a
/// single-pair convenience wrapper. O(n + m) per source — fine for
/// tests and for the online baseline column in benchmarks, hopeless as
/// a query engine, which is the paper's motivation for indexing.
namespace pspc {

/// Distances and shortest-path counts from `source` to every vertex.
struct SingleSourceSpc {
  std::vector<Distance> distance;  // kInfDistance if unreachable
  std::vector<Count> count;        // 0 if unreachable; saturating
};

/// BFS counting: count[v] = sum of count[u] over BFS parents u of v.
SingleSourceSpc BfsSpcFromSource(const Graph& graph, VertexId source);

/// Single-pair SPC by one BFS from `s`.
SpcResult BfsSpcPair(const Graph& graph, VertexId s, VertexId t);

}  // namespace pspc

#endif  // PSPC_SRC_BASELINE_BFS_SPC_H_
