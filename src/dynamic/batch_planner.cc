#include "src/dynamic/batch_planner.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace pspc {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

Result<BatchPlan> PlanBatch(
    const EdgeUpdateBatch& batch,
    const std::function<bool(VertexId, VertexId)>& has_edge,
    bool directed) {
  // Per touched edge: membership at batch start and in the running
  // simulation. Start-state is queried lazily, once per distinct edge.
  struct EdgeState {
    bool start;
    bool current;
  };
  std::unordered_map<uint64_t, EdgeState> touched;
  touched.reserve(batch.Size());

  BatchPlan plan;
  size_t index = 0;
  for (const EdgeUpdate& up : batch) {
    const VertexId u = directed ? up.u : std::min(up.u, up.v);
    const VertexId v = directed ? up.v : std::max(up.u, up.v);
    auto [it, fresh] = touched.try_emplace(EdgeKey(u, v), EdgeState{});
    if (fresh) {
      it->second.start = has_edge(u, v);
      it->second.current = it->second.start;
    }
    if (up.kind == EdgeUpdateKind::kInsert) {
      // A redundant insert (duplicate, or the edge already exists) is a
      // no-op, not an error: the intended post-state already holds.
      it->second.current = true;
    } else {
      if (!it->second.current) {
        return Status::NotFound(
            "batch update " + std::to_string(index) + " deletes edge (" +
            std::to_string(up.u) + ", " + std::to_string(up.v) +
            ") which does not exist at that point; nothing was applied");
      }
      it->second.current = false;
    }
    ++index;
  }

  for (const auto& [key, state] : touched) {
    if (state.start == state.current) continue;
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xffffffffu);
    if (state.current) {
      plan.net_insertions.push_back({u, v});
    } else {
      plan.net_deletions.push_back({u, v});
    }
  }
  // Everything the net lists do not carry was coalesced away.
  plan.coalesced_updates = batch.Size() - plan.NetSize();

  // Deterministic repair order regardless of unordered_map iteration.
  std::sort(plan.net_insertions.begin(), plan.net_insertions.end());
  std::sort(plan.net_deletions.begin(), plan.net_deletions.end());
  return plan;
}

}  // namespace pspc
