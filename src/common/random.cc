#include "src/common/random.h"

#include "src/common/logging.h"

namespace pspc {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PSPC_CHECK(bound != 0);
  // Lemire's unbiased bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PSPC_CHECK(lo <= hi);
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(Next()); }

}  // namespace pspc
