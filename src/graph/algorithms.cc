#include "src/graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace pspc {

std::vector<Distance> BfsDistances(const Graph& graph, VertexId source) {
  PSPC_CHECK(source < graph.NumVertices());
  std::vector<Distance> dist(graph.NumVertices(), kInfDistance);
  std::vector<VertexId> frontier{source};
  dist[source] = 0;
  Distance d = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : graph.Neighbors(u)) {
        if (dist[v] == kInfDistance) {
          dist[v] = d;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<VertexId> ConnectedComponents(const Graph& graph,
                                          VertexId* num_components) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> component(n, kInvalidVertex);
  VertexId next_id = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (component[s] != kInvalidVertex) continue;
    component[s] = next_id;
    stack.assign(1, s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : graph.Neighbors(u)) {
        if (component[v] == kInvalidVertex) {
          component[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  if (num_components != nullptr) *num_components = next_id;
  return component;
}

std::vector<VertexId> CoreNumbers(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> degree(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree (Batagelj–Zaveršnik peeling).
  std::vector<VertexId> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (size_t i = 1; i < bucket_start.size(); ++i) {
    bucket_start[i] += bucket_start[i - 1];
  }
  std::vector<VertexId> order(n), position(n);
  {
    std::vector<VertexId> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }
  std::vector<VertexId> core(n);
  std::vector<VertexId> deg = degree;
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = deg[v];
    for (VertexId u : graph.Neighbors(v)) {
      if (deg[u] > deg[v]) {
        // Move u to the front of its bucket, then shrink its degree.
        const VertexId du = deg[u];
        const VertexId pu = position[u];
        const VertexId pw = bucket_start[du];
        const VertexId w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        ++bucket_start[du];
        --deg[u];
      }
    }
  }
  return core;
}

std::vector<VertexId> KCoreVertices(const Graph& graph, VertexId k) {
  std::vector<VertexId> core = CoreNumbers(graph);
  std::vector<VertexId> result;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (core[v] >= k) result.push_back(v);
  }
  return result;
}

Distance Eccentricity(const Graph& graph, VertexId source) {
  const auto dist = BfsDistances(graph, source);
  Distance ecc = 0;
  for (Distance d : dist) {
    if (d != kInfDistance) ecc = std::max(ecc, d);
  }
  return ecc;
}

Distance EstimateDiameter(const Graph& graph, int rounds, uint64_t seed) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return 0;
  Rng rng(seed);
  Distance best = 0;
  VertexId start = static_cast<VertexId>(rng.NextBounded(n));
  for (int r = 0; r < rounds; ++r) {
    const auto dist = BfsDistances(graph, start);
    VertexId farthest = start;
    Distance ecc = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != kInfDistance && dist[v] > ecc) {
        ecc = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, ecc);
    start = farthest;
  }
  return best;
}

Distance ExactDiameter(const Graph& graph) {
  Distance best = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    best = std::max(best, Eccentricity(graph, v));
  }
  return best;
}

}  // namespace pspc
