// Reproduces Fig. 7 (Exp 3): average SPC query time over a random
// workload (the paper uses 1e5 queries). Expected shape: HP-SPC and
// PSPC answer in the same time (same index, same query path, ~1e2 us
// in the paper); PSPC+ divides the *batch* across threads for a
// near-linear throughput speedup.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/label/query_engine.h"

namespace {

void QueryTime(benchmark::State& state, const std::string& code,
               const pspc::BuildOptions& build, int query_threads) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  const pspc::SpcIndex& index = pspc::bench::GetIndex(code, build).index;
  const pspc::QueryBatch batch = pspc::MakeRandomQueries(
      g.NumVertices(), pspc::bench::QueryWorkloadSize(), /*seed=*/0xF16'7);
  double total_us = 0.0;
  size_t queries = 0;
  for (auto _ : state) {
    pspc::WallTimer timer;
    if (query_threads == 1) {
      benchmark::DoNotOptimize(pspc::RunQueries(index, batch));
    } else {
      benchmark::DoNotOptimize(
          pspc::RunQueriesParallel(index, batch, query_threads));
    }
    total_us += timer.ElapsedMicros();
    queries += batch.size();
    state.SetIterationTime(timer.ElapsedSeconds());
  }
  state.counters["avg_query_us"] = total_us / static_cast<double>(queries);
  state.counters["queries"] = static_cast<double>(batch.size());
}

int RegisterAll() {
  struct Algo {
    const char* name;
    pspc::BuildOptions build;
    int query_threads;
  };
  const Algo algos[] = {
      {"HP-SPC", pspc::bench::HpSpcOptions(), 1},
      {"PSPC", pspc::bench::PspcOptions1Thread(), 1},
      {"PSPC+", pspc::bench::PspcOptionsAllThreads(), 0},
  };
  for (const auto& spec : pspc::AllDatasets()) {
    for (const Algo& algo : algos) {
      benchmark::RegisterBenchmark(
          ("fig7/query_time/" + spec.code + "/" + algo.name).c_str(),
          [code = spec.code, build = algo.build,
           threads = algo.query_threads](benchmark::State& s) {
            QueryTime(s, code, build, threads);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
