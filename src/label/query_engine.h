#ifndef PSPC_SRC_LABEL_QUERY_ENGINE_H_
#define PSPC_SRC_LABEL_QUERY_ENGINE_H_

#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/label/spc_index.h"

/// Batch query execution (paper §IV "Query Evaluation in Parallel"):
/// queries are independent, so a batch is divided dynamically among
/// threads — the source of the near-linear query speedup in Fig. 9.
namespace pspc {

/// A batch of (s, t) query pairs.
using QueryBatch = std::vector<std::pair<VertexId, VertexId>>;

/// `count` uniform random pairs over `[0, num_vertices)`; the workload
/// the paper uses for Exp 3 (10^5 random queries per dataset). An
/// empty universe (`num_vertices == 0`) yields an empty batch.
QueryBatch MakeRandomQueries(VertexId num_vertices, size_t count,
                             uint64_t seed);

/// Runs every query sequentially.
std::vector<SpcResult> RunQueries(const SpcIndex& index,
                                  const QueryBatch& batch);

/// Runs the batch with `num_threads` OpenMP threads (<= 0: all cores);
/// results are positionally identical to RunQueries.
std::vector<SpcResult> RunQueriesParallel(const SpcIndex& index,
                                          const QueryBatch& batch,
                                          int num_threads);

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_QUERY_ENGINE_H_
