// Reproduces Table III: statistics of the (substituted) datasets.
// Each benchmark row reports |V|, |E| and the average degree of one
// dataset as counters; generation time is the measured time.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"

namespace {

void DatasetStats(benchmark::State& state, const std::string& code) {
  for (auto _ : state) {
    const pspc::Graph& g = pspc::bench::GetGraph(code);
    benchmark::DoNotOptimize(g.NumEdges());
  }
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  state.counters["V"] = static_cast<double>(g.NumVertices());
  state.counters["E"] = static_cast<double>(g.NumEdges());
  state.counters["davg"] = g.AverageDegree();
}

}  // namespace

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    benchmark::RegisterBenchmark(("table3/" + spec.code).c_str(),
                                 [code = spec.code](benchmark::State& s) {
                                   DatasetStats(s, code);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}

static const int kRegistered = RegisterAll();
