#ifndef PSPC_BENCH_BENCH_JSON_H_
#define PSPC_BENCH_BENCH_JSON_H_

// The JSON emission helpers the benches historically carried moved to
// src/common/json_writer.h so MetricsRegistry::ToJson (src/obs/) and
// the `--json` bench summaries share one serializer. This forwarding
// header keeps the bench include spelling stable.
#include "src/common/json_writer.h"

#endif  // PSPC_BENCH_BENCH_JSON_H_
