// Corpus: clean — near-misses the rules must NOT flag (the test
// lints this file as src/serve/clean.cc, the strictest class).
#include <atomic>
#include <cstdint>

// A cataloged metric name and a C++14 digit separator are fine.
const char* Name() { return "serve.queries_total"; }
const uint64_t kBig = 10'000;

std::atomic<uint64_t> g_ticks{0};

// relaxed: one cluster comment covering both adjacent lines.
inline void Bump() { g_ticks.fetch_add(1, std::memory_order_relaxed); }
inline uint64_t Get() { return g_ticks.load(std::memory_order_relaxed); }

// The word in a string (or a comment: std::mutex) is not a raw-mutex
// use, and identifiers merely containing banned names are not calls.
const char* Hint() { return "use spc::Mutex, not std::mutex"; }
inline int TimeLike(int time_like) { return time_like + 1; }
