#include "src/graph/datasets.h"

#include <cstdlib>

#include "src/common/logging.h"
#include "src/graph/generators.h"

namespace pspc {
namespace {

VertexId Shrunk(VertexId base, VertexId divisor) {
  const VertexId v = base / (divisor == 0 ? 1 : divisor);
  return v < 64 ? 64 : v;
}

int ShrunkScale(int base_scale, VertexId divisor) {
  int s = base_scale;
  while (divisor > 1 && s > 8) {
    divisor /= 2;
    --s;
  }
  return s;
}

// --- One builder per paper dataset (seeds fixed; see DESIGN.md §4). ---

Graph BuildFb(VertexId d) {  // Facebook: social, davg ~ 25.6
  return GenerateBarabasiAlbert(Shrunk(8192, d), 13, /*seed=*/0xFB01);
}

Graph BuildGw(VertexId d) {  // Gowalla: geo-social small world, davg ~ 9.7
  return GenerateWattsStrogatz(Shrunk(8192, d), 5, 0.12, /*seed=*/0x6A01);
}

Graph BuildWi(VertexId d) {  // WikiConflict: skewed interactions, davg ~ 34
  return GenerateRmat(ShrunkScale(13, d), EdgeId{17} * (VertexId{1} << ShrunkScale(13, d)),
                      0.57, 0.19, 0.19, /*seed=*/0x3101);
}

Graph BuildGo(VertexId d) {  // Google web graph, davg ~ 9.9
  return GenerateRmat(ShrunkScale(14, d), EdgeId{5} * (VertexId{1} << ShrunkScale(14, d)),
                      0.57, 0.19, 0.19, /*seed=*/0x6001);
}

Graph BuildDb(VertexId d) {  // DBLP co-authorship, davg ~ 8.1
  return GenerateClusteredBa(Shrunk(16384, d), 4, 0.35, /*seed=*/0xDB01);
}

Graph BuildBe(VertexId d) {  // Berkstan web, davg ~ 19.4
  return GenerateRmat(ShrunkScale(13, d), EdgeId{10} * (VertexId{1} << ShrunkScale(13, d)),
                      0.59, 0.19, 0.19, /*seed=*/0xBE01);
}

Graph BuildYt(VertexId d) {  // Youtube social, davg ~ 5.8
  return GenerateBarabasiAlbert(Shrunk(24576, d), 3, /*seed=*/0x5701);
}

Graph BuildPe(VertexId d) {  // Petster social, davg ~ 50.3
  return GenerateBarabasiAlbert(Shrunk(8192, d), 25, /*seed=*/0x9E01);
}

Graph BuildFl(VertexId d) {  // Flickr social, davg ~ 19.8
  return GenerateRmat(ShrunkScale(14, d), EdgeId{10} * (VertexId{1} << ShrunkScale(14, d)),
                      0.55, 0.2, 0.2, /*seed=*/0xF101);
}

Graph BuildIn(VertexId d) {  // Indochina web (largest), davg ~ 40.7
  return GenerateRmat(ShrunkScale(15, d), EdgeId{20} * (VertexId{1} << ShrunkScale(15, d)),
                      0.6, 0.18, 0.18, /*seed=*/0x1D01);
}

Graph BuildRd(VertexId d) {  // Road-network analogue (paper §III-G)
  const VertexId side = Shrunk(96, d);
  return GenerateRoadGrid(side, side, 0.92, 0.06, /*seed=*/0xAD01);
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* kDatasets =
      new std::vector<DatasetSpec>{
          {"FB", "Facebook social -> Barabasi-Albert", &BuildFb, true},
          {"GW", "Gowalla geo-social -> Watts-Strogatz", &BuildGw, true},
          {"WI", "WikiConflict interactions -> R-MAT", &BuildWi, true},
          {"GO", "Google web -> R-MAT", &BuildGo, true},
          {"DB", "DBLP co-authorship -> clustered BA", &BuildDb, false},
          {"BE", "Berkstan web -> R-MAT", &BuildBe, false},
          {"YT", "Youtube social -> sparse BA", &BuildYt, false},
          {"PE", "Petster social -> dense BA", &BuildPe, false},
          {"FL", "Flickr social -> R-MAT", &BuildFl, false},
          {"IN", "Indochina web -> large R-MAT", &BuildIn, false},
          {"RD", "road network -> perturbed grid", &BuildRd, false},
      };
  return *kDatasets;
}

const DatasetSpec& DatasetByCode(const std::string& code) {
  for (const auto& spec : AllDatasets()) {
    if (spec.code == code) return spec;
  }
  PSPC_CHECK_MSG(false, "unknown dataset code: " << code);
  __builtin_unreachable();
}

VertexId BenchScaleDivisor() {
  const char* env = std::getenv("PSPC_BENCH_SCALE_DIVISOR");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<VertexId>(v) : 1;
}

}  // namespace pspc
