#include "src/core/worker.h"

void Worker::Drain() {
  spc::MutexLock outer(mu_);
  work_ = work_ + 1;
  {
    spc::MutexLock inner(mu_);  // re-locks a held non-reentrant mutex
    work_ = work_ + 1;
  }
}

void Worker::Helper() {
  spc::MutexLock lock(mu_);  // REQUIRES(mu_) already declares it held
  work_ = work_ - 1;
}
