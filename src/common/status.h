#ifndef PSPC_SRC_COMMON_STATUS_H_
#define PSPC_SRC_COMMON_STATUS_H_

#include <string>
#include <utility>

/// RocksDB-style error handling: the library is exception-free; fallible
/// operations return `Status` (or `Result<T>` for value-producing ones).
namespace pspc {

/// Outcome of a fallible operation. Cheap to copy for the OK case.
/// `[[nodiscard]]` on the class makes every by-value `Status` return
/// must-use: ignoring one is a compile warning (error in CI) and the
/// `spc_analyze` must-use pass re-checks the same contract tree-wide.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kOutOfRange,
    kUnimplemented,
    kInternal,
  };

  /// Default-constructed Status is OK.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value or an error. Minimal StatusOr analogue: exactly one of
/// `status().ok()` / `has_value()` holds; accessing `value()` on an
/// error aborts (programmer error, checked via PSPC_CHECK).
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace pspc

/// Propagates a non-OK Status from the current function.
#define PSPC_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::pspc::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // PSPC_SRC_COMMON_STATUS_H_
