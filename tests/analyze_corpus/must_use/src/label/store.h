#pragma once
#include "src/common/status.h"

class Status;

class Store {
 public:
  Status Flush();
  Status Write(int v);
  int Size();
};

Status Validate(int v);
