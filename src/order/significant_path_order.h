#ifndef PSPC_SRC_ORDER_SIGNIFICANT_PATH_ORDER_H_
#define PSPC_SRC_ORDER_SIGNIFICANT_PATH_ORDER_H_

#include "src/graph/graph.h"
#include "src/order/vertex_order.h"

/// Significant-path-based ordering (paper §III-G): the i-th hub's pruned
/// BFS produces a partial shortest-path tree T_wi; the scheme walks the
/// "significant path" from the root toward the leaf through children
/// with the most descendants and picks as the next hub the path vertex
/// maximizing `deg(v) * (des(parent(v)) - des(v))`.
///
/// This is the strongest sequential ordering in HP-SPC but is inherently
/// order-dependent: hub i+1 cannot be chosen before hub i's BFS tree
/// exists, which is exactly the dependency that blocks parallel
/// construction (the paper's motivation for the hybrid order). The
/// implementation runs a distance-only pruned-BFS labeling internally,
/// so computing this order costs roughly one sequential index build.
namespace pspc {

VertexOrder SignificantPathOrder(const Graph& graph);

}  // namespace pspc

#endif  // PSPC_SRC_ORDER_SIGNIFICANT_PATH_ORDER_H_
