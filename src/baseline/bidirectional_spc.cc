#include "src/baseline/bidirectional_spc.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/common/saturating.h"

namespace pspc {
namespace {

/// One BFS side: levels expanded so far and per-vertex state.
struct Side {
  std::vector<Distance> dist;
  std::vector<Count> count;
  std::vector<VertexId> frontier;
  Distance levels = 0;

  explicit Side(VertexId n, VertexId source)
      : dist(n, kInfDistance), count(n, 0), frontier{source} {
    dist[source] = 0;
    count[source] = 1;
  }

  /// Expands one level; returns false if the frontier was exhausted.
  bool Expand(const Graph& graph) {
    if (frontier.empty()) return false;
    ++levels;
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (VertexId v : graph.Neighbors(u)) {
        if (dist[v] == kInfDistance) {
          dist[v] = levels;
          next.push_back(v);
        }
        if (dist[v] == levels) count[v] = SatAdd(count[v], count[u]);
      }
    }
    frontier.swap(next);
    return true;
  }
};

}  // namespace

SpcResult BidirectionalSpc(const Graph& graph, VertexId s, VertexId t) {
  PSPC_CHECK(s < graph.NumVertices() && t < graph.NumVertices());
  if (s == t) return {0, 1};

  Side fwd(graph.NumVertices(), s);
  Side bwd(graph.NumVertices(), t);

  uint32_t best = kInfSpcDistance;
  // Expand until the levels certify that no shorter meeting can appear:
  // any undiscovered shortest path would need length > levels(fwd) +
  // levels(bwd).
  while (static_cast<uint32_t>(fwd.levels) + bwd.levels < best) {
    // Expand the cheaper (smaller-frontier) side; fall back to the
    // other if it is exhausted; stop when both are.
    Side* side = fwd.frontier.size() <= bwd.frontier.size() ? &fwd : &bwd;
    if (side->frontier.empty()) side = (side == &fwd) ? &bwd : &fwd;
    if (side->frontier.empty()) break;
    side->Expand(graph);
    // A new meeting involves a vertex whose *second* distance was just
    // assigned, so scanning the freshly expanded level finds them all.
    for (VertexId v : side->frontier) {
      const Distance df = fwd.dist[v];
      const Distance db = bwd.dist[v];
      if (df != kInfDistance && db != kInfDistance) {
        best = std::min<uint32_t>(best, static_cast<uint32_t>(df) + db);
      }
    }
  }
  if (best == kInfSpcDistance) return {kInfSpcDistance, 0};

  // Count over one fixed split level l: every shortest path has exactly
  // one vertex u with dist(s,u) == l, and dist(u,t) == best - l <=
  // levels(bwd) is fully expanded, so counts on both sides are final.
  const auto l = static_cast<Distance>(
      std::min<uint32_t>(fwd.levels, best));
  PSPC_CHECK(best - l <= bwd.levels);
  Count total = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (fwd.dist[v] == l && bwd.dist[v] != kInfDistance &&
        static_cast<uint32_t>(fwd.dist[v]) + bwd.dist[v] == best) {
      total = SatAdd(total, SatMul(fwd.count[v], bwd.count[v]));
    }
  }
  return {best, total};
}

}  // namespace pspc
