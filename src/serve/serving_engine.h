#ifndef PSPC_SRC_SERVE_SERVING_ENGINE_H_
#define PSPC_SRC_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/dynamic/compaction.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/label/query_engine.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/request_queue.h"
#include "src/serve/result_cache.h"
#include "src/serve/snapshot_manager.h"

/// The concurrent serving front-end: queries run against published
/// epoch snapshots while edge repairs apply, so readers never wait on
/// a writer.
///
/// Wiring: client threads Submit single queries or batches into the
/// bounded MPMC queue; a worker pool drains it in adaptive
/// micro-batches, pins one epoch per micro-batch, consults the sharded
/// generation-tagged result cache, and answers the rest from the
/// pinned `IndexSnapshot` (the §IV parallel-batch kernel's merge path).
/// The write side — ApplyUpdate(s) — is serialized on a writer mutex
/// no reader ever touches: it repairs the `DynamicSpcIndex` and
/// publishes a fresh snapshot generation, which retires the previous
/// one into the epoch reclamation queue.
///
/// Every answer is exact for the generation it was computed against;
/// a query admitted before a publish may be answered from the prior
/// generation (standard RCU semantics). After Drain() with no write in
/// flight, answers are exact for the current graph.
namespace pspc {

struct ServingOptions {
  /// Query worker threads (<= 0: all cores).
  int num_workers = 0;
  /// Micro-batch cap: the most queries one epoch pin spans.
  size_t max_batch = 64;
  /// Bounded request queue; full = producer back-pressure.
  size_t queue_capacity = 1 << 16;
  /// Result-cache geometry; shard count rounds up to a power of two,
  /// zero capacity disables caching.
  size_t cache_shards = 16;
  size_t cache_capacity_per_shard = 1 << 14;
  /// Registry receiving the `serve.*` metrics (latency histograms,
  /// counters, publication gauges). Null selects the process-global
  /// registry. Note the index's `dynamic.*` metrics follow the
  /// registry *it* was configured with, not this one.
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace one in N submitted queries (0 = tracing off). Sampling is
  /// deterministic: the k-th submission (process-wide order) is traced
  /// iff `k % n == trace_seed % n`.
  uint64_t trace_sample_every_n = 0;
  uint64_t trace_seed = 0;
  /// Traced queries slower than this end-to-end (microseconds) land in
  /// the bounded slow-trace log (`Traces().SlowTraceLog()`).
  double slow_trace_us = 10'000.0;
  size_t slow_trace_capacity = 64;
  /// Flight recorder receiving publish / reclaim / batch-apply /
  /// queue-high-water events. Null selects the process-global one.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Recent update-batch traces retained for `/tracez`.
  size_t update_trace_capacity = 64;
  /// Background overlay compaction (undirected indexes only — the
  /// directed index has no packed mirror yet; ignored for directed
  /// engines). A dedicated thread periodically packs repaired overlay
  /// chunks into the compressed label form and folds a stale overlay
  /// into a fresh packed base, interleaving with update batches under
  /// the writer mutex and publishing through the usual O(delta)
  /// snapshot machinery (see src/dynamic/compaction.h).
  bool enable_compaction = false;
  /// Sleep between background compaction steps.
  uint64_t compaction_interval_ms = 50;
  /// Budget/fold policy handed to the OverlayCompactor.
  CompactionOptions compaction;
};

/// Monotonic totals since construction (point-in-time copies).
struct ServingCounters {
  uint64_t queries_served = 0;
  uint64_t micro_batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t updates_applied = 0;
  uint64_t generations_published = 0;
  uint64_t snapshots_reclaimed = 0;
  uint64_t snapshots_retired_pending = 0;
  /// Publish cost in vertices whose label chunk had to be copied —
  /// O(delta since the previous publish) under the persistent chunked
  /// overlay, vs the whole overlay per publish under the retired
  /// map-copy design.
  uint64_t publish_copied_vertices_last = 0;
  uint64_t publish_copied_vertices_total = 0;

  std::string ToString() const;
};

class ServingEngine {
 public:
  /// Takes over `index`'s write path: from here on, all updates must
  /// go through ApplyUpdate(s) and all queries through Submit*.
  /// `index` must outlive the engine.
  explicit ServingEngine(DynamicSpcIndex* index, ServingOptions options = {});

  /// Directed variant: identical wiring over a `DynamicDspcIndex`
  /// (queries answer the directed pair s -> t; publication freezes
  /// both label-side overlays, each O(delta) per batch).
  explicit ServingEngine(DynamicDspcIndex* index,
                         ServingOptions options = {});

  /// Stops (drains, joins workers) if Stop was not called explicitly.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one query. `s`, `t` must be < NumVertices(). Thread-safe.
  std::future<SpcResult> Submit(VertexId s, VertexId t);

  /// Enqueues a batch; the future completes when every query has been
  /// answered (positionally matching `batch`). Thread-safe.
  std::future<std::vector<SpcResult>> SubmitBatch(const QueryBatch& batch);

  /// Applies the batch *atomically* to the index (coalesced repair,
  /// see DynamicSpcIndex::ApplyBatch) and publishes at most one
  /// snapshot generation for it. On a validation error nothing applies
  /// and nothing publishes; a batch that coalesces to a net no-op also
  /// publishes nothing. Serialized internally; thread-safe. Queries
  /// keep flowing against the previous generation while this runs.
  Status ApplyUpdates(const EdgeUpdateBatch& batch) EXCLUDES(writer_mu_);
  Status ApplyUpdate(const EdgeUpdate& update) EXCLUDES(writer_mu_);

  /// Generation readers are currently being served from.
  uint64_t PublishedGeneration() const {
    return snapshots_.PublishedGeneration();
  }

  VertexId NumVertices() const { return num_vertices_; }

  /// Blocks until every previously submitted query has completed. With
  /// no concurrent submitters/writers this is a quiesce point: answers
  /// from here on reflect the current graph exactly.
  void Drain() EXCLUDES(drain_mu_);

  /// Drains, closes the queue, joins the workers. Submitting after
  /// Stop aborts. Idempotent.
  void Stop();

  /// Point-in-time totals. Lock-free: every field reads an atomic (or
  /// a registry counter, itself sharded atomics), so pollers can call
  /// this at any rate without ever contending with the write path.
  ServingCounters Counters() const;

  /// The sampled-trace sink: slow-query log and sampling totals.
  const obs::TraceCollector& Traces() const { return traces_; }

  /// Write-path traces: one entry per ApplyUpdates batch, batch-id
  /// correlated, with plan/repair/publish/reclaim stage costs.
  const obs::UpdateTraceLog& UpdateTraces() const { return update_traces_; }

  /// The registry this engine's serve.* metrics land in.
  obs::MetricsRegistry& Metrics() const { return *metrics_; }

  /// Pins the currently published snapshot until the returned ref is
  /// released — a consistent multi-query read (every Query against the
  /// ref sees one generation). Operationally a held pin delays
  /// reclamation of every later generation, which is exactly what the
  /// health watchdog's reclaim_backlog rule watches for; tests use
  /// this as the reclaim-stall fault injection.
  SnapshotRef PinSnapshot() const { return snapshots_.Acquire(); }

  /// Deepest the request queue has been (diagnostics).
  size_t QueueHighWater() const { return queue_.HighWater(); }

  /// Cumulative compaction stats (zeros when compaction is disabled).
  /// Writer-serialized with updates; safe to call from any thread.
  CompactionStats CompactionTotals() EXCLUDES(writer_mu_);

  /// Runs one synchronous compaction step (pack budget + fold check)
  /// on the caller's thread, exactly as the background thread would.
  /// Returns true if anything was packed or folded (and published).
  /// No-op (false) when compaction is disabled or the index is
  /// directed. Thread-safe.
  bool CompactOnce() EXCLUDES(writer_mu_);

 private:
  void WorkerLoop();
  void StartWorkers();
  void CompactionLoop();
  void StopCompaction();
  /// `generation` is the initial published generation (the ctor's
  /// init-list value of published_generation_, passed by value so the
  /// gauge wiring never reads the writer_mu_-guarded field unlocked).
  void BindMetrics(uint64_t generation);
  void AttachTrace(ServeRequest* request);
  bool Enqueue(ServeRequest request);
  void FinishRequests(size_t n);

  // Exactly one of the two is non-null; the write path dispatches on
  // it, the read path only ever sees published snapshots.
  DynamicSpcIndex* index_ = nullptr;
  DynamicDspcIndex* directed_index_ = nullptr;
  ServingOptions options_;
  VertexId num_vertices_;
  size_t num_workers_;

  SnapshotManager snapshots_;
  RequestQueue queue_;
  ResultCache cache_;
  std::vector<std::thread> workers_;

  // Write path. Counters() no longer takes this: every counter it
  // reports lives in an atomic any thread can read.
  spc::Mutex writer_mu_;
  uint64_t published_generation_ GUARDED_BY(writer_mu_);
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> publishes_{0};

  // Background compaction. The compactor mutates the index, so every
  // use happens under writer_mu_ (interleaved with update batches);
  // compaction_mu_ guards only the thread's lifecycle (interval sleep
  // + stop flag) and never nests with writer_mu_.
  std::unique_ptr<OverlayCompactor> compactor_ GUARDED_BY(writer_mu_);
  std::thread compaction_thread_;
  spc::Mutex compaction_mu_;
  spc::CondVar compaction_cv_;
  bool compaction_stop_ GUARDED_BY(compaction_mu_) = false;

  // Completion tracking for Drain().
  std::atomic<uint64_t> pending_{0};
  spc::Mutex drain_mu_;
  spc::CondVar drain_cv_;

  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> micro_batches_{0};
  std::atomic<bool> stopped_{false};

  // Observability. The per-engine atomics above stay authoritative for
  // Counters() (a registry may be shared across engines); the registry
  // handles below are fed the identical deltas at the identical sites,
  // so an exported snapshot of a per-engine registry always agrees
  // with Counters().
  obs::MetricsRegistry* metrics_;
  obs::Counter* queries_total_;
  obs::Counter* micro_batches_total_;
  obs::Counter* cache_hits_total_;
  obs::Counter* cache_misses_total_;
  obs::Counter* updates_applied_total_;
  obs::Counter* generations_published_total_;
  obs::Counter* traces_sampled_total_;
  obs::Counter* traces_slow_total_;
  obs::Gauge* published_generation_gauge_;
  obs::Histogram* query_latency_us_;
  obs::Histogram* query_latency_cache_hit_us_;
  obs::Histogram* query_latency_merge_us_;
  obs::Histogram* queue_wait_us_;
  obs::Histogram* micro_batch_size_;
  obs::Histogram* update_latency_us_;
  obs::Histogram* publish_us_;
  obs::Counter* label_bytes_merged_total_;
  obs::Histogram* label_bytes_per_query_;
  obs::Counter* compaction_steps_total_;
  obs::Counter* compaction_chunks_packed_total_;
  obs::Counter* compaction_folds_total_;
  obs::Counter* compaction_entries_pruned_total_;
  obs::Histogram* compaction_step_us_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* queue_capacity_gauge_;
  obs::FlightRecorder* recorder_;

  obs::TraceSampler sampler_;
  obs::TraceCollector traces_;
  obs::UpdateTraceLog update_traces_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_batch_id_{1};
  // Queue high-water mark last announced to the flight recorder;
  // workers race benignly on it (CAS, at most one event per new mark).
  std::atomic<size_t> reported_high_water_{0};
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_SERVING_ENGINE_H_
