#ifndef PSPC_SRC_CORE_BUILDER_FACADE_H_
#define PSPC_SRC_CORE_BUILDER_FACADE_H_

#include "src/core/build_options.h"
#include "src/core/build_stats.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"
#include "src/order/vertex_order.h"

/// One-call index construction: computes the vertex order named by the
/// options (timing it as the paper's "Order" phase, Fig. 13), then runs
/// HP-SPC or PSPC. This is the entry point examples and benchmarks use;
/// tests also call the underlying builders directly.
namespace pspc {

struct BuildResult {
  SpcIndex index;
  BuildStats stats;
};

/// Computes the vertex order for `scheme` (delta used by kHybrid only).
VertexOrder ComputeOrder(const Graph& graph, OrderingScheme scheme,
                         VertexId hybrid_delta);

/// Builds an SPC index for `graph` per `options`.
BuildResult BuildIndex(const Graph& graph, const BuildOptions& options);

/// Builds with a caller-supplied order (ordering_seconds reported as 0).
BuildResult BuildIndexWithOrder(const Graph& graph, const VertexOrder& order,
                                const BuildOptions& options);

}  // namespace pspc

#endif  // PSPC_SRC_CORE_BUILDER_FACADE_H_
