// Mixed read/write serving throughput: the epoch-snapshot
// `ServingEngine` against a snapshot-off baseline that takes one
// global mutex around the whole `DynamicSpcIndex` for every query and
// every update — the design the serving subsystem replaces.
//
// For each read/write ratio (100/0, 95/5, 50/50) and loader-thread
// count, loader threads run a closed query loop while a writer applies
// synthetic closure churn (close a live edge / reopen a closed one),
// self-paced toward the target write share of total operations.
// Because one repair costs thousands of query times, any nonzero write
// share leaves the writer near-saturated; the measurement is then
// exactly the subsystem's reason to exist: how much read throughput
// survives while the index is continuously repairing. The headline
// check is the ISSUE-2 acceptance bar — at 95/5 the engine must
// sustain >= 5x the baseline's query throughput.
//
// After the mixed runs, a **publish-cost phase** drives an insert-heavy
// batch stream through the real publish path (`SnapshotManager` +
// `IndexSnapshot::Capture`) and reports, per publish, how many label
// chunks had to be copied under the persistent chunked overlay versus
// the map-copy baseline (which re-copied the whole overlay — exactly
// `overlaid vertices` — every publish). The p50 copied count must stay
// at the batch delta while the overlay keeps growing; the phase exits
// non-zero if the p50 publish copies more than half the final overlay
// (with enough batches for the comparison to mean anything) — the
// bound the CI smoke asserts.
//
// Self-contained (WallTimer-based) so it builds without the
// google-benchmark dependency the figure benches use:
//
//   ./bench_serving [duration_seconds_per_run] [scale_divisor]
//                   [required_95_5_speedup] [--json <path>]
//
// The optional third argument turns the 95/5 target into a hard exit
// code (CI passes 5 at quarter scale, where the regime holds).
// `--json <path>` additionally writes the printed metrics as a
// machine-readable BENCH_*.json summary.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "src/baseline/bfs_spc.h"
#include "src/common/mutex.h"
#include "src/common/percentile.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/closure_churn.h"
#include "src/dynamic/compaction.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/graph/generators.h"
#include "src/obs/metrics.h"
#include "src/label/label_merge.h"
#include "src/label/label_merge_simd.h"
#include "src/label/packed_label.h"
#include "src/label/query_engine.h"
#include "src/serve/index_snapshot.h"
#include "src/serve/serving_engine.h"
#include "src/serve/snapshot_manager.h"

namespace {

constexpr size_t kBatch = 64;       // queries per loader iteration
constexpr size_t kHotPairs = 4096;  // repeat-keyed working set
constexpr double kHotShare = 0.9;   // of queries drawn from the hot set

struct RunResult {
  uint64_t reads = 0;
  uint64_t writes = 0;
  double seconds = 0.0;
  double batch_p50_ms = 0.0;
  double batch_p99_ms = 0.0;

  double ReadsPerSecond() const {
    return seconds == 0.0 ? 0.0 : static_cast<double>(reads) / seconds;
  }
};

// Drives one mixed run: `loaders` closed-loop reader threads calling
// `run_batch`, plus this thread applying churn through `apply`, paced
// toward `write_share` of total operations. Queries follow the shape
// of serving traffic — heavily repeat-keyed (kHotShare of them draw
// from a kHotPairs working set, the rest are uniform random), the
// regime the generation-tagged result cache exists for.
RunResult RunMixed(
    pspc::VertexId n, double write_share, int loaders, double duration,
    const std::function<void(const pspc::QueryBatch&)>& run_batch,
    const std::function<pspc::Status(const pspc::EdgeUpdate&)>& apply,
    pspc::ClosureChurn* churn) {
  const pspc::QueryBatch hot = pspc::MakeRandomQueries(n, kHotPairs, 0xcafe);
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(loaders));
  std::vector<std::thread> threads;
  for (int i = 0; i < loaders; ++i) {
    auto* out = &latencies[static_cast<size_t>(i)];
    const uint64_t seed = 0xb0b0 + static_cast<uint64_t>(i);
    threads.emplace_back([&, out, seed] {
      pspc::Rng rng(seed);
      pspc::QueryBatch batch(kBatch);
      // relaxed: stop flag and read tally are statistics/poll-only;
      // no payload is published through them.
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& query : batch) {
          if (rng.NextBool(kHotShare)) {
            query = hot[rng.NextBounded(kHotPairs)];
          } else {
            query = {static_cast<pspc::VertexId>(rng.NextBounded(n)),
                     static_cast<pspc::VertexId>(rng.NextBounded(n))};
          }
        }
        pspc::WallTimer timer;
        run_batch(batch);
        out->push_back(timer.ElapsedMillis());
        // relaxed: throughput tally, read approximately by the pacer.
        reads.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
  }

  pspc::Rng write_rng(0xfeed);
  uint64_t writes = 0;
  pspc::WallTimer wall;
  while (wall.ElapsedSeconds() < duration) {
    const double quota =
        write_share / (1.0 - write_share) *
        // relaxed: pacing estimate; staleness only skews the mix.
        static_cast<double>(reads.load(std::memory_order_relaxed));
    if (write_share == 0.0 || churn->Empty() ||
        static_cast<double>(writes) >= quota) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    if (apply(churn->Next(write_rng)).ok()) ++writes;
  }
  const double elapsed = wall.ElapsedSeconds();
  // relaxed: join() below is the synchronization point.
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) thread.join();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  RunResult result;
  result.reads = reads.load();
  result.writes = writes;
  result.seconds = elapsed;
  result.batch_p50_ms = pspc::Percentile(all, 0.5);
  result.batch_p99_ms = pspc::Percentile(all, 0.99);
  return result;
}

// Quiesce exactness check: after the run has fully drained, a handful
// of answers must match a fresh BFS on the live graph.
size_t OracleMismatches(
    pspc::DynamicSpcIndex* index,
    const std::function<pspc::SpcResult(pspc::VertexId, pspc::VertexId)>&
        query) {
  const pspc::Graph current = index->MaterializeGraph();
  size_t mismatches = 0;
  for (const auto& [s, t] :
       pspc::MakeRandomQueries(current.NumVertices(), 8, 0x0c1e)) {
    if (query(s, t) != pspc::BfsSpcPair(current, s, t)) ++mismatches;
  }
  return mismatches;
}

struct Row {
  const char* mode;
  double write_share;
  int loaders;
  RunResult result;
  size_t oracle_mismatches;
};

Row RunEngine(const pspc::Graph& graph, const pspc::SpcIndex& index,
              double write_share, int loaders, double duration) {
  pspc::DynamicSpcIndex dynamic(graph, index);  // fresh copy per run
  pspc::ServingOptions options;
  options.num_workers = loaders;
  pspc::ServingEngine engine(&dynamic, options);
  pspc::ClosureChurn churn(graph);
  RunResult result = RunMixed(
      graph.NumVertices(), write_share, loaders, duration,
      [&](const pspc::QueryBatch& batch) { engine.SubmitBatch(batch).get(); },
      [&](const pspc::EdgeUpdate& update) {
        return engine.ApplyUpdate(update);
      },
      &churn);
  engine.Drain();
  const size_t mismatches =
      OracleMismatches(&dynamic, [&](pspc::VertexId s, pspc::VertexId t) {
        return engine.Submit(s, t).get();
      });
  return {"engine", write_share, loaders, result, mismatches};
}

Row RunGlobalLock(const pspc::Graph& graph, const pspc::SpcIndex& index,
                  double write_share, int loaders, double duration) {
  pspc::DynamicSpcIndex dynamic(graph, index);  // fresh copy per run
  pspc::spc::Mutex whole_index;  // the snapshot-off design: one lock for all
  pspc::ClosureChurn churn(graph);
  RunResult result = RunMixed(
      graph.NumVertices(), write_share, loaders, duration,
      [&](const pspc::QueryBatch& batch) {
        for (const auto& [s, t] : batch) {
          pspc::spc::MutexLock lock(whole_index);
          dynamic.Query(s, t);
        }
      },
      [&](const pspc::EdgeUpdate& update) {
        pspc::spc::MutexLock lock(whole_index);
        return dynamic.Apply(update);
      },
      &churn);
  const size_t mismatches =
      OracleMismatches(&dynamic, [&](pspc::VertexId s, pspc::VertexId t) {
        pspc::spc::MutexLock lock(whole_index);
        return dynamic.Query(s, t);
      });
  return {"lock  ", write_share, loaders, result, mismatches};
}

// Insert-heavy publish-cost phase: `batches` atomic batches of
// `batch_size` fresh edges each, one Publish per batch through the
// real retire/reclaim path. Returns false when the p50 publish copies
// more than half the final overlay — publish cost tracking the
// *overlay* instead of the *batch delta* is the regression this
// guards against.
bool RunPublishCostPhase(const pspc::Graph& graph,
                         const pspc::SpcIndex& index, size_t batches,
                         size_t batch_size,
                         pspc::benchjson::Object* json_out) {
  pspc::DynamicOptions options;
  options.rebuild_threshold = 1e18;  // repair-only: the overlay only grows
  pspc::DynamicSpcIndex dynamic(graph, index, options);
  pspc::SnapshotManager manager(pspc::IndexSnapshot::Capture(dynamic));

  const pspc::VertexId n = graph.NumVertices();
  pspc::Rng rng(0xdeed);
  std::vector<double> copied, publish_ms;
  size_t map_copy_cost = 0;  // sum of per-publish whole-overlay copies
  for (size_t b = 0; b < batches; ++b) {
    pspc::EdgeUpdateBatch batch;
    while (batch.Size() < batch_size) {
      const auto u = static_cast<pspc::VertexId>(rng.NextBounded(n));
      const auto v = static_cast<pspc::VertexId>(rng.NextBounded(n));
      if (u == v || dynamic.HasEdge(u, v)) continue;
      batch.Insert(u, v);
    }
    if (!dynamic.ApplyBatch(batch).ok()) {
      std::printf("publish-cost phase: ApplyBatch FAILED\n");
      return false;
    }
    pspc::WallTimer timer;
    manager.Publish(pspc::IndexSnapshot::Capture(dynamic));
    publish_ms.push_back(timer.ElapsedMillis());
    copied.push_back(
        static_cast<double>(manager.LastPublishCopiedVertices()));
    map_copy_cost += dynamic.Overlay().OverlaidVertices();
  }

  const size_t final_overlaid = dynamic.Overlay().OverlaidVertices();
  const double p50_copied = pspc::Percentile(copied, 0.5);
  const double p95_copied = pspc::Percentile(copied, 0.95);
  if (json_out != nullptr) {
    json_out->Add("batches", batches);
    json_out->Add("batch_size", batch_size);
    json_out->Add("copied_p50", p50_copied);
    json_out->Add("copied_p95", p95_copied);
    json_out->Add("publish_p50_ms", pspc::Percentile(publish_ms, 0.5));
    json_out->Add("map_copy_baseline_total", map_copy_cost);
    json_out->Add("chunked_copied_total",
                  manager.TotalPublishCopiedVertices());
    json_out->Add("final_overlaid_vertices", final_overlaid);
  }
  std::printf(
      "\npublish cost, insert-heavy (%zu batches x %zu inserts):\n"
      "  copied vertices/publish: p50 %.0f, p95 %.0f  "
      "(publish p50 %.3f ms)\n"
      "  map-copy baseline would have copied %zu vertices total; the "
      "chunked overlay copied %zu (%.1fx less)\n"
      "  final overlay: %zu vertices\n",
      batches, batch_size, p50_copied, p95_copied,
      pspc::Percentile(publish_ms, 0.5), map_copy_cost,
      manager.TotalPublishCopiedVertices(),
      manager.TotalPublishCopiedVertices() == 0
          ? 0.0
          : static_cast<double>(map_copy_cost) /
                static_cast<double>(manager.TotalPublishCopiedVertices()),
      final_overlaid);

  // Quiesce oracle on the final published generation.
  const pspc::Graph current = dynamic.MaterializeGraph();
  size_t mismatches = 0;
  {
    const pspc::SnapshotRef snapshot = manager.Acquire();
    for (const auto& [s, t] : pspc::MakeRandomQueries(n, 16, 0x0c2e)) {
      if (snapshot->Query(s, t) != pspc::BfsSpcPair(current, s, t)) {
        ++mismatches;
      }
    }
  }
  if (mismatches != 0) {
    std::printf("  oracle: %zu mismatches  <-- CORRECTNESS BUG\n",
                mismatches);
    return false;
  }

  // The bound: per-publish cost must track the batch delta, not the
  // accumulated overlay. Enforced only once the overlay is large
  // enough that the distinction exists.
  if (batches >= 16 && final_overlaid >= 64 &&
      2.0 * p50_copied > static_cast<double>(final_overlaid)) {
    std::printf("  p50 publish copied %.0f of %zu overlaid vertices "
                "(NOT O(batch delta)!)\n",
                p50_copied, final_overlaid);
    return false;
  }
  std::printf("  p50 publish copies the batch delta (bound met), "
              "oracle exact\n");
  return true;
}

// Query-path phase: the memory-bandwidth work of ISSUE-10. Times the
// scalar reference merge against the vectorized kernel on raw spans
// and on packed label blocks, and reports the label bytes a query
// streams under each representation. Mismatch counts are exact-gated
// in CI; the byte ratio is machine-independent and gated as a speedup.
bool RunQueryPathPhase(const pspc::SpcIndex& index,
                       pspc::benchjson::Object* json_out) {
  const pspc::VertexId n = index.NumVertices();
  const pspc::PackedLabelMap packed =
      pspc::PackedLabelMap::Encode(index.LabelMap());
  const pspc::QueryBatch pairs = pspc::MakeRandomQueries(n, 4096, 0xbead);
  const size_t reps = std::max<size_t>(1, 500'000 / pairs.size());

  size_t raw_bytes = 0, packed_bytes = 0, mismatches = 0;
  std::vector<pspc::SpcResult> reference;
  reference.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    reference.push_back(
        pspc::MergeLabelCounts(index.Labels(s), index.Labels(t)));
    raw_bytes += index.Labels(s).size_bytes() + index.Labels(t).size_bytes();
    packed_bytes += packed.Block(s).SizeBytes() + packed.Block(t).SizeBytes();
  }

  const auto time_merges = [&](auto&& merge) {
    uint64_t checksum = 0;
    pspc::WallTimer timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const auto& [s, t] : pairs) {
        checksum ^= merge(s, t).count;
      }
      // Full compiler barrier so the pure, fully-inlinable scalar
      // reference cannot be hoisted out of the rep loop (the
      // runtime-dispatched kernels cannot be; the comparison must be
      // fair).
      asm volatile("" : "+r"(checksum) : : "memory");
    }
    const double seconds = timer.ElapsedSeconds();
    return seconds * 1e9 / static_cast<double>(reps * pairs.size()) +
           (checksum == 0xdeadbeef ? 1e-12 : 0.0);
  };
  const double scalar_ns = time_merges([&](pspc::VertexId s, pspc::VertexId t) {
    return pspc::MergeLabelCounts(index.Labels(s), index.Labels(t));
  });
  const double fast_ns = time_merges([&](pspc::VertexId s, pspc::VertexId t) {
    return pspc::MergeLabelCountsFast(index.Labels(s), index.Labels(t));
  });
  const double packed_ns = time_merges([&](pspc::VertexId s, pspc::VertexId t) {
    return pspc::MergeLabelSources(
        pspc::LabelSource::Packed(packed.Block(s)),
        pspc::LabelSource::Packed(packed.Block(t)));
  });
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [s, t] = pairs[i];
    if (pspc::MergeLabelCountsFast(index.Labels(s), index.Labels(t)) !=
        reference[i]) {
      ++mismatches;
    }
    if (pspc::MergeLabelSources(pspc::LabelSource::Packed(packed.Block(s)),
                                pspc::LabelSource::Packed(packed.Block(t))) !=
        reference[i]) {
      ++mismatches;
    }
  }

  const double raw_bpq =
      static_cast<double>(raw_bytes) / static_cast<double>(pairs.size());
  const double packed_bpq =
      static_cast<double>(packed_bytes) / static_cast<double>(pairs.size());
  std::printf(
      "\nquery path (%zu pairs, kernel %s):\n"
      "  merge: scalar %.0f ns, vectorized %.0f ns (%.2fx), packed %.0f ns\n"
      "  label bytes/query: raw %.0f, packed %.0f (%.2fx fewer)\n"
      "  kernel mismatches vs reference: %zu%s\n",
      pairs.size(), pspc::MergeKernelName(pspc::ActiveMergeKernel()),
      scalar_ns, fast_ns, scalar_ns / fast_ns, packed_ns, raw_bpq, packed_bpq,
      raw_bpq / packed_bpq, mismatches,
      mismatches == 0 ? "" : "  <-- CORRECTNESS BUG");
  if (json_out != nullptr) {
    json_out->Add("pairs", static_cast<uint64_t>(pairs.size()));
    json_out->Add("merge_kernel",
                  pspc::MergeKernelName(pspc::ActiveMergeKernel()));
    json_out->Add("scalar_merge_ns", scalar_ns);
    json_out->Add("fast_merge_ns", fast_ns);
    json_out->Add("packed_merge_ns", packed_ns);
    json_out->Add("fast_kernel_speedup", scalar_ns / fast_ns);
    json_out->Add("label_bytes_per_query_raw", raw_bpq);
    json_out->Add("label_bytes_per_query_packed", packed_bpq);
    json_out->Add("packed_bytes_speedup", raw_bpq / packed_bpq);
    json_out->Add("kernel_mismatches", mismatches);
  }
  return mismatches == 0;
}

// Compaction phase: insert-heavy churn into a repair-only overlay,
// then the ISSUE-10 compactor — budgeted pack steps until the overlay
// is fully packed, then one fold. Driven synchronously so the row is
// deterministic (the concurrent engine-owned path is covered by
// serving_compaction_test under TSan). Reports overlay width
// before/after, stale entries pruned, and the packed-vs-raw chunk
// footprint; the quiesce oracle is exact-gated in CI.
bool RunCompactionPhase(const pspc::Graph& graph, const pspc::SpcIndex& index,
                        pspc::benchjson::Object* json_out) {
  pspc::DynamicOptions options;
  options.rebuild_threshold = 1e18;  // repair-only; compaction owns folds
  pspc::DynamicSpcIndex dynamic(graph, index, options);

  const pspc::VertexId n = graph.NumVertices();
  pspc::Rng rng(0xc0de);
  for (size_t b = 0; b < 16; ++b) {
    pspc::EdgeUpdateBatch batch;
    while (batch.Size() < 8) {
      const auto u = static_cast<pspc::VertexId>(rng.NextBounded(n));
      const auto v = static_cast<pspc::VertexId>(rng.NextBounded(n));
      if (u == v || dynamic.HasEdge(u, v)) continue;
      batch.Insert(u, v);
    }
    if (!dynamic.ApplyBatch(batch).ok()) {
      std::printf("compaction phase: ApplyBatch FAILED\n");
      return false;
    }
  }

  pspc::CompactionOptions compaction;
  compaction.chunk_budget_per_step = 64;
  pspc::OverlayCompactor compactor(&dynamic, compaction);

  const size_t overlay_entries_before = dynamic.Overlay().OverlaidEntries();
  pspc::WallTimer pack_timer;
  size_t pack_steps = 0;
  while (compactor.PackStep() > 0) {
    if (++pack_steps > 100000) break;  // paranoia: never hang the bench
  }
  const double pack_ms = pack_timer.ElapsedMillis();
  const uint64_t chunks_packed = compactor.Stats().chunks_packed;
  const uint64_t raw_chunk_bytes = compactor.Stats().raw_chunk_bytes;
  const uint64_t packed_chunk_bytes = compactor.Stats().packed_chunk_bytes;

  pspc::WallTimer fold_timer;
  compactor.Fold();
  const double fold_ms = fold_timer.ElapsedMillis();
  const pspc::CompactionStats totals = compactor.Stats();
  const size_t overlay_entries_after = dynamic.Overlay().OverlaidEntries();

  const pspc::Graph current = dynamic.MaterializeGraph();
  size_t mismatches = 0;
  for (const auto& [s, t] : pspc::MakeRandomQueries(n, 16, 0x0c3e)) {
    if (dynamic.Query(s, t) != pspc::BfsSpcPair(current, s, t)) ++mismatches;
  }

  std::printf(
      "\ncompaction (insert-heavy overlay):\n"
      "  packed %llu chunks in %zu steps (%.3f ms): %llu raw B -> %llu "
      "packed B (%.2fx)\n"
      "  fold (%.3f ms): overlay %zu -> %zu entries, %llu stale pruned\n"
      "  oracle: %zu mismatches%s\n",
      static_cast<unsigned long long>(chunks_packed), pack_steps, pack_ms,
      static_cast<unsigned long long>(raw_chunk_bytes),
      static_cast<unsigned long long>(packed_chunk_bytes),
      packed_chunk_bytes == 0
          ? 0.0
          : static_cast<double>(raw_chunk_bytes) /
                static_cast<double>(packed_chunk_bytes),
      fold_ms, overlay_entries_before, overlay_entries_after,
      static_cast<unsigned long long>(totals.entries_pruned), mismatches,
      mismatches == 0 ? "" : "  <-- CORRECTNESS BUG");
  if (json_out != nullptr) {
    json_out->Add("overlay_entries_before_fold", overlay_entries_before);
    json_out->Add("overlay_entries_after_fold", overlay_entries_after);
    json_out->Add("chunks_packed", chunks_packed);
    json_out->Add("entries_pruned", totals.entries_pruned);
    json_out->Add("raw_chunk_bytes", raw_chunk_bytes);
    json_out->Add("packed_chunk_bytes", packed_chunk_bytes);
    json_out->Add("chunk_bytes_speedup",
                  packed_chunk_bytes == 0
                      ? 1.0
                      : static_cast<double>(raw_chunk_bytes) /
                            static_cast<double>(packed_chunk_bytes));
    json_out->Add("pack_ms", pack_ms);
    json_out->Add("fold_ms", fold_ms);
    json_out->Add("fold_emptied_overlay_met", overlay_entries_after == 0);
    json_out->Add("oracle_mismatches", mismatches);
  }
  return mismatches == 0 && overlay_entries_after == 0;
}

}  // namespace

int main(int argc, char** argv) {
  double duration = 2.0;
  uint32_t divisor = 1;
  double required_speedup = 0.0;
  std::string json_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json expects an output path\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) duration = std::atof(positional[0].c_str());
  if (positional.size() > 1) {
    divisor = static_cast<uint32_t>(std::atoi(positional[1].c_str()));
  }
  if (positional.size() > 2) {
    required_speedup = std::atof(positional[2].c_str());
  }
  if (divisor == 0) divisor = 1;

  // Floor at a size where the graph still has edges to churn.
  const pspc::VertexId n = std::max<pspc::VertexId>(64, 8000 / divisor);
  const pspc::Graph graph = pspc::GenerateBarabasiAlbert(n, 4, 1);
  std::printf("graph: %u vertices, %llu edges; building base index...\n", n,
              static_cast<unsigned long long>(graph.NumEdges()));
  pspc::BuildResult built = pspc::BuildIndex(graph, pspc::BuildOptions{});
  std::printf("base index: %zu entries\n\n", built.index.TotalEntries());

  const double kWriteShares[] = {0.0, 0.05, 0.5};  // 100/0, 95/5, 50/50
  const int kLoaderCounts[] = {2, 4};

  std::vector<Row> rows;
  std::printf("%-7s %9s %8s %14s %10s %10s %7s %7s\n", "mode", "ratio",
              "loaders", "reads/s", "p50 ms", "p99 ms", "writes", "oracle");
  for (const double write_share : kWriteShares) {
    for (const int loaders : kLoaderCounts) {
      for (const bool use_engine : {false, true}) {
        const Row row =
            use_engine
                ? RunEngine(graph, built.index, write_share, loaders, duration)
                : RunGlobalLock(graph, built.index, write_share, loaders,
                                duration);
        std::printf("%-7s %3.0f/%-3.0f %8d %14.0f %10.3f %10.3f %7llu %7s\n",
                    row.mode, 100.0 * (1.0 - write_share), 100.0 * write_share,
                    loaders, row.result.ReadsPerSecond(), row.result.batch_p50_ms,
                    row.result.batch_p99_ms,
                    static_cast<unsigned long long>(row.result.writes),
                    row.oracle_mismatches == 0 ? "exact" : "WRONG");
        rows.push_back(row);
      }
    }
  }

  // Headline: the ISSUE-2 acceptance bar at 95/5, best loader count.
  double best_speedup = 0.0;
  size_t total_mismatches = 0;
  for (const Row& row : rows) total_mismatches += row.oracle_mismatches;
  for (const int loaders : kLoaderCounts) {
    double engine_rate = 0.0, lock_rate = 0.0;
    for (const Row& row : rows) {
      if (row.write_share != 0.05 || row.loaders != loaders) continue;
      if (row.mode[0] == 'e') {
        engine_rate = row.result.ReadsPerSecond();
      } else {
        lock_rate = row.result.ReadsPerSecond();
      }
    }
    if (lock_rate > 0.0) {
      best_speedup = std::max(best_speedup, engine_rate / lock_rate);
    }
  }
  std::printf("\n95/5 read throughput, engine vs whole-index lock: %.1fx %s\n",
              best_speedup,
              best_speedup >= 5.0 ? "(target >=5x met)"
                                  : "(BELOW the 5x target!)");
  std::printf("oracle: %zu mismatches%s\n", total_mismatches,
              total_mismatches == 0 ? "" : "  <-- CORRECTNESS BUG");

  // Publish-cost phase: insert-heavy, enough batches that the overlay
  // dwarfs a single batch's blast radius; always enforced (the bound
  // is scale-independent — it compares the delta to the overlay).
  pspc::benchjson::Object publish_json;
  const bool publish_ok =
      RunPublishCostPhase(graph, built.index, /*batches=*/24,
                          /*batch_size=*/8, &publish_json);

  // ISSUE-10 phases: the memory-bandwidth query path (vectorized merge
  // kernel + packed label bytes) and the overlay compactor.
  pspc::benchjson::Object query_path_json;
  const bool query_path_ok = RunQueryPathPhase(built.index, &query_path_json);
  pspc::benchjson::Object compaction_json;
  const bool compaction_ok =
      RunCompactionPhase(graph, built.index, &compaction_json);

  if (!json_path.empty()) {
    pspc::benchjson::Object root;
    root.Add("bench", "serving");
    root.Add("vertices", static_cast<uint64_t>(n));
    root.Add("edges", static_cast<uint64_t>(graph.NumEdges()));
    root.Add("duration_seconds_per_run", duration);
    pspc::benchjson::Array row_array;
    for (const Row& row : rows) {
      pspc::benchjson::Object r;
      r.Add("mode", row.mode[0] == 'e' ? "engine" : "lock");
      r.Add("write_share", row.write_share);
      r.Add("loaders", row.loaders);
      r.Add("reads_per_second", row.result.ReadsPerSecond());
      r.Add("batch_p50_ms", row.result.batch_p50_ms);
      r.Add("batch_p99_ms", row.result.batch_p99_ms);
      r.Add("writes", row.result.writes);
      r.Add("oracle_mismatches", row.oracle_mismatches);
      row_array.Add(r);
    }
    root.AddRaw("rows", row_array.Serialize());
    root.Add("speedup_95_5_best", best_speedup);
    root.AddRaw("publish_cost", publish_json.Serialize());
    root.Add("publish_bound_met", publish_ok);
    root.AddRaw("query_path", query_path_json.Serialize());
    root.AddRaw("compaction", compaction_json.Serialize());
    root.Add("query_path_exact_met", query_path_ok);
    root.Add("compaction_exact_met", compaction_ok);
    root.Add("oracle_mismatches_total", total_mismatches);
    // The full observability snapshot of the run (every engine above
    // fed the process-global registry) — same schema the serve CLI
    // exports, so BENCH_*.json rows and scraped metrics line up.
    root.AddRaw("metrics", pspc::obs::MetricsRegistry::Global().ToJson());
    if (!pspc::benchjson::WriteFile(json_path, root)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  // The third argument makes the speedup bar enforceable where the
  // configuration warrants it (the CI smoke passes 5); unconditional
  // enforcement would false-fail tiny scales, where repairs are too
  // fast for the lock baseline to collapse.
  if (required_speedup > 0.0 && best_speedup < required_speedup) return 1;
  return total_mismatches == 0 && publish_ok && query_path_ok && compaction_ok
             ? 0
             : 1;
}
