#ifndef PSPC_SRC_COMMON_PERCENTILE_H_
#define PSPC_SRC_COMMON_PERCENTILE_H_

#include <algorithm>
#include <vector>

/// Nearest-rank percentile over a sample, shared by every bench/CLI
/// latency report so p50/p99 always mean the same thing.
namespace pspc {

/// The `p`-quantile (`p` in [0, 1]) by nearest rank; 0 for an empty
/// sample. Takes the values by copy — callers keep their raw series.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_PERCENTILE_H_
