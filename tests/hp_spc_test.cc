#include <gtest/gtest.h>

#include <vector>

#include "src/core/hp_spc_builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/order/degree_order.h"
#include "src/order/vertex_order.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

using pspc::testing::AllPairs;
using pspc::testing::BruteForceSpc;

/// The paper's total order for Figure 2 (Table II):
/// v1 <= v7 <= v4 <= v10 <= v3 <= v5 <= v6 <= v2 <= v8 <= v9.
/// Paper vertex v_i is id i-1 here; the array maps rank -> id.
VertexOrder PaperFigure2Order() {
  return VertexOrder(std::vector<VertexId>{0, 6, 3, 9, 2, 4, 5, 1, 7, 8});
}

std::vector<LabelEntry> Labels(const SpcIndex& index, VertexId v) {
  const auto span = index.Labels(v);
  return {span.begin(), span.end()};
}

/// Exact reproduction of the paper's Table II: the ESPC labels of the
/// Figure 2 graph under the published order. Hubs are stored as ranks;
/// e.g. entry "(v7, 3, 2)" of vertex v10 becomes {rank 1, 3, 2}.
TEST(HpSpcTableIITest, ReproducesEveryRow) {
  const Graph g = PaperFigure2Graph();
  const auto result = BuildHpSpcIndex(g, PaperFigure2Order());
  const SpcIndex& index = result.index;

  using E = std::vector<LabelEntry>;
  // v1
  EXPECT_EQ(Labels(index, 0), (E{{0, 0, 1}}));
  // v2: (v1,2,2)(v7,2,1)(v4,1,1)(v10,1,1)(v2,0,1)
  EXPECT_EQ(Labels(index, 1),
            (E{{0, 2, 2}, {1, 2, 1}, {2, 1, 1}, {3, 1, 1}, {7, 0, 1}}));
  // v3: (v1,1,1)(v7,2,1)(v3,0,1)
  EXPECT_EQ(Labels(index, 2), (E{{0, 1, 1}, {1, 2, 1}, {4, 0, 1}}));
  // v4: (v1,1,1)(v7,1,1)(v4,0,1)
  EXPECT_EQ(Labels(index, 3), (E{{0, 1, 1}, {1, 1, 1}, {2, 0, 1}}));
  // v5: (v1,1,1)(v7,1,1)(v5,0,1)
  EXPECT_EQ(Labels(index, 4), (E{{0, 1, 1}, {1, 1, 1}, {5, 0, 1}}));
  // v6: (v1,2,1)(v7,1,1)(v3,1,1)(v6,0,1)
  EXPECT_EQ(Labels(index, 5), (E{{0, 2, 1}, {1, 1, 1}, {4, 1, 1}, {6, 0, 1}}));
  // v7: (v1,2,2)(v7,0,1)
  EXPECT_EQ(Labels(index, 6), (E{{0, 2, 2}, {1, 0, 1}}));
  // v8: (v1,3,3)(v7,1,1)(v10,2,1)(v8,0,1)
  EXPECT_EQ(Labels(index, 7), (E{{0, 3, 3}, {1, 1, 1}, {3, 2, 1}, {8, 0, 1}}));
  // v9: (v1,2,1)(v7,2,1)(v4,3,1)(v10,1,1)(v8,1,1)(v9,0,1)
  EXPECT_EQ(Labels(index, 8), (E{{0, 2, 1},
                                 {1, 2, 1},
                                 {2, 3, 1},
                                 {3, 1, 1},
                                 {8, 1, 1},
                                 {9, 0, 1}}));
  // v10: (v1,1,1)(v7,3,2)(v4,2,1)(v10,0,1)
  EXPECT_EQ(Labels(index, 9), (E{{0, 1, 1}, {1, 3, 2}, {2, 2, 1}, {3, 0, 1}}));

  EXPECT_EQ(index.TotalEntries(), 35u);
}

TEST(HpSpcTableIITest, QueryMatchesExample1) {
  const Graph g = PaperFigure2Graph();
  const auto result = BuildHpSpcIndex(g, PaperFigure2Order());
  // Common hubs of L(v10), L(v7): v1 (1+2=3, 1*2) and v7 (3+0=3, 2*1).
  EXPECT_EQ(result.index.Query(9, 6), (SpcResult{3, 4}));
}

TEST(HpSpcTest, AllPairsExactOnFigure2) {
  const Graph g = PaperFigure2Graph();
  const auto result = BuildHpSpcIndex(g, PaperFigure2Order());
  for (const auto& [s, t] : AllPairs(g.NumVertices())) {
    EXPECT_EQ(result.index.Query(s, t), BruteForceSpc(g, s, t))
        << "pair (" << s << "," << t << ")";
  }
}

TEST(HpSpcTest, CanonicalAndNonCanonicalSplitIsTracked) {
  const Graph g = PaperFigure2Graph();
  const auto result = BuildHpSpcIndex(g, PaperFigure2Order());
  // Every non-self label is canonical or non-canonical; totals agree.
  EXPECT_EQ(result.stats.canonical_labels + result.stats.non_canonical_labels +
                g.NumVertices(),
            result.stats.labels_inserted);
  EXPECT_GT(result.stats.non_canonical_labels, 0u);
}

TEST(HpSpcTest, PathGraphLabelsAreLinear) {
  // Under identity order on a path, vertex v's hubs are exactly
  // 0..v (rank i at distance v-i): ESPC of a path has quadratic size.
  const Graph g = GeneratePath(6);
  const auto result = BuildHpSpcIndex(g, IdentityOrder(6));
  for (VertexId v = 0; v < 6; ++v) {
    const auto labels = result.index.Labels(v);
    ASSERT_EQ(labels.size(), v + 1u);
    for (VertexId i = 0; i <= v; ++i) {
      EXPECT_EQ(labels[i].hub_rank, i);
      EXPECT_EQ(labels[i].dist, v - i);
      EXPECT_EQ(labels[i].count, 1u);
    }
  }
}

TEST(HpSpcTest, StarUnderDegreeOrderIsMinimal) {
  // Center ranks first; every leaf stores only the center + itself.
  const Graph g = GenerateStar(8);
  const auto result = BuildHpSpcIndex(g, DegreeOrder(g));
  EXPECT_EQ(result.index.TotalEntries(), 1u + 8u * 2u);
  EXPECT_EQ(result.index.Query(3, 5), (SpcResult{2, 1}));
}

TEST(HpSpcTest, CompleteGraphQueries) {
  const Graph g = GenerateComplete(7);
  const auto result = BuildHpSpcIndex(g, DegreeOrder(g));
  for (const auto& [s, t] : AllPairs(7)) {
    EXPECT_EQ(result.index.Query(s, t), (SpcResult{1, 1}));
  }
}

TEST(HpSpcTest, CycleCountsBothDirections) {
  const Graph g = GenerateCycle(8);
  const auto result = BuildHpSpcIndex(g, IdentityOrder(8));
  EXPECT_EQ(result.index.Query(0, 4), (SpcResult{4, 2}));
  EXPECT_EQ(result.index.Query(1, 5), (SpcResult{4, 2}));
  EXPECT_EQ(result.index.Query(0, 3), (SpcResult{3, 1}));
}

TEST(HpSpcTest, DisconnectedComponentsStayDisconnected) {
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto result = BuildHpSpcIndex(g, DegreeOrder(g));
  EXPECT_EQ(result.index.Query(0, 5), (SpcResult{kInfSpcDistance, 0}));
  EXPECT_EQ(result.index.Query(0, 2), (SpcResult{2, 1}));
  EXPECT_EQ(result.index.Query(3, 5), (SpcResult{2, 1}));
}

TEST(HpSpcTest, DiamondLadderExponentialCounts) {
  const Graph g = GenerateDiamondLadder(5, 3);
  const auto result = BuildHpSpcIndex(g, DegreeOrder(g));
  EXPECT_EQ(result.index.Query(0, g.NumVertices() - 1),
            (SpcResult{4, 27}));  // 3^3
}

TEST(HpSpcTest, WeightedCountsMultiplyInternalVertices) {
  // Path 0-1-2 with weight(1) = 5: five "virtual" middle vertices.
  const Graph g = GeneratePath(3);
  const std::vector<Count> weights{1, 5, 1};
  const auto result = BuildHpSpcIndex(g, IdentityOrder(3), weights);
  EXPECT_EQ(result.index.Query(0, 2), (SpcResult{2, 5}));
  // Adjacent pair: no internal vertex, count stays 1.
  EXPECT_EQ(result.index.Query(0, 1), (SpcResult{1, 1}));
}

TEST(HpSpcTest, RandomGraphMatchesBfsOracle) {
  const Graph g = GenerateErdosRenyi(60, 150, 17);
  const auto result = BuildHpSpcIndex(g, DegreeOrder(g));
  for (const auto& [s, t] : AllPairs(60)) {
    EXPECT_EQ(result.index.Query(s, t), BfsSpcPair(g, s, t))
        << "pair (" << s << "," << t << ")";
  }
}

TEST(HpSpcTest, OrderChoiceChangesSizeNotAnswers) {
  const Graph g = GenerateBarabasiAlbert(80, 3, 21);
  const auto by_degree = BuildHpSpcIndex(g, DegreeOrder(g));
  const auto by_identity = BuildHpSpcIndex(g, IdentityOrder(80));
  for (const auto& [s, t] : AllPairs(80)) {
    EXPECT_EQ(by_degree.index.Query(s, t), by_identity.index.Query(s, t));
  }
  // Degree order should not be larger than the arbitrary one here.
  EXPECT_LE(by_degree.index.TotalEntries(), by_identity.index.TotalEntries());
}

}  // namespace
}  // namespace pspc
