#include "src/dynamic/compaction.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/label/packed_label.h"

namespace pspc {

OverlayCompactor::OverlayCompactor(DynamicSpcIndex* index,
                                   CompactionOptions options)
    : index_(index), options_(options) {}

size_t OverlayCompactor::PackStep() {
  ChunkedOverlay& overlay = index_->overlay_;
  std::vector<VertexId> candidates;
  overlay.ForEachOverlaid([&](VertexId v, const LabelChunk& chunk) {
    if (chunk.packed.empty()) candidates.push_back(v);
  });
  if (candidates.empty()) return 0;

  // Resume after the previous step's last vertex so successive
  // budgeted steps sweep the overlay round-robin instead of re-packing
  // the lowest ids while a writer keeps dirtying them.
  std::sort(candidates.begin(), candidates.end());
  const auto resume =
      std::lower_bound(candidates.begin(), candidates.end(), pack_cursor_);
  std::rotate(candidates.begin(), resume, candidates.end());

  const size_t todo = std::min(options_.chunk_budget_per_step, candidates.size());
  for (size_t i = 0; i < todo; ++i) {
    const VertexId v = candidates[i];
    // Build the packed twin next to a fresh copy of the entries and
    // swap it in under the overlay's COW discipline; captures that
    // alias the old raw chunk keep serving it untouched.
    auto packed_chunk = std::make_shared<LabelChunk>();
    const std::span<const LabelEntry> entries = overlay.Labels(v);
    packed_chunk->entries.assign(entries.begin(), entries.end());
    AppendPackedBlock(ChunkSpan(*packed_chunk), &packed_chunk->packed);
    stats_.raw_chunk_bytes += entries.size_bytes();
    stats_.packed_chunk_bytes += packed_chunk->packed.size();
    overlay.ReplaceChunk(v, std::move(packed_chunk));
  }
  pack_cursor_ = candidates[todo - 1] + 1;
  stats_.chunks_packed += todo;
  ++stats_.pack_steps;
  return todo;
}

bool OverlayCompactor::FoldIfStale() {
  if (index_->StalenessRatio() <= options_.fold_staleness_ratio) return false;
  Fold();
  return true;
}

void OverlayCompactor::Fold() {
  DynamicSpcIndex& idx = *index_;
  const VertexId n = idx.NumVertices();
  stats_.last_fold_entries_folded = idx.overlay_.OverlaidEntries();

  // Materialize base (+) overlay. No BFS, no re-ordering — the fold is
  // a linear pass, unlike Rebuild().
  std::vector<std::vector<LabelEntry>> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    const std::span<const LabelEntry> span = idx.overlay_.Labels(v);
    labels[v].assign(span.begin(), span.end());
  }

  uint64_t pruned = 0;
  if (options_.prune_stale_entries) {
    // Stale-entry sweep over repaired vertices, decided against the
    // still-live (exact) index: entry (v, h, d) is stale iff d exceeds
    // the true distance sd(v, vertex(h)). Such an entry can never
    // reach the minimum of any merge (d + d' > sd(v,h) + sd(h,t) >=
    // sd(v,t)), so dropping it leaves every query bit-identical.
    idx.overlay_.ForEachOverlaid([&](VertexId v, const LabelChunk&) {
      std::vector<LabelEntry>& lv = labels[v];
      const auto stale_from =
          std::remove_if(lv.begin(), lv.end(), [&](const LabelEntry& e) {
            const VertexId hub = idx.order_.VertexAt(e.hub_rank);
            return static_cast<uint32_t>(e.dist) > idx.Query(v, hub).distance;
          });
      pruned += static_cast<uint64_t>(lv.end() - stale_from);
      lv.erase(stale_from, lv.end());
    });
  }

  // Publish through the standard rebase path: snapshots captured
  // before the fold keep the old base + pages alive; the generation
  // bump tells the serving layer the label state changed.
  idx.base_ = std::make_shared<const SpcIndex>(
      SpcIndex(idx.order_, std::move(labels)));
  idx.RefreshPackedBase();
  idx.overlay_.Rebase(idx.base_->LabelMap());
  ++idx.generation_;
  idx.PublishMetrics();

  ++stats_.folds;
  stats_.entries_pruned += pruned;
}

}  // namespace pspc
