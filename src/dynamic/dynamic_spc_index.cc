#include "src/dynamic/dynamic_spc_index.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/repair_core.h"
#include "src/label/label_merge_simd.h"

namespace pspc {

std::string DynamicStats::ToString() const {
  std::ostringstream oss;
  oss << "updates: " << insertions_applied << " insert / "
      << deletions_applied << " delete (" << batches_applied << " batches, "
      << updates_coalesced << " coalesced)\n"
      << "repair:  " << resumed_bfs_runs << " resumed BFS, "
      << affected_hubs << " hubs fully re-run, " << subtract_repairs
      << " hubs count-subtracted\n"
      << "waves:   " << parallel_waves << " parallel, " << parallel_hub_runs
      << " hub runs committed, " << deferred_hub_runs << " deferred\n"
      << "labels:  " << entries_inserted << " inserted, " << entries_renewed
      << " renewed, " << entries_erased << " erased\n"
      << "rebuilds: " << rebuilds << "\n"
      << "time: repair " << repair_seconds << "s, rebuild "
      << rebuild_seconds << "s";
  return oss.str();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 DynamicOptions options)
    : base_graph_(std::move(graph)),
      base_(std::make_shared<const SpcIndex>(std::move(index))),
      order_(base_->Order()),
      graph_(&base_graph_),
      overlay_(base_->LabelMap()),
      options_(options),
      obs_(options.metrics),
      recorder_(options.flight_recorder != nullptr
                    ? options.flight_recorder
                    : &obs::FlightRecorder::Global()) {
  PSPC_CHECK_MSG(base_->NumVertices() == base_graph_.NumVertices(),
                 "index (" << base_->NumVertices() << " vertices) does not "
                 "match graph (" << base_graph_.NumVertices() << ")");
  RefreshPackedBase();
  InitScratch();
}

void DynamicSpcIndex::RefreshPackedBase() {
  packed_base_ = std::make_shared<const PackedLabelMap>(
      PackedLabelMap::Encode(base_->LabelMap()));
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph,
                                 const BuildOptions& build_options,
                                 DynamicOptions options)
    : DynamicSpcIndex(graph, BuildIndex(graph, build_options).index,
                      options) {}

void DynamicSpcIndex::InitScratch() {
  const VertexId n = base_graph_.NumVertices();
  scratch_.Init(n);
  scratch_pool_.clear();
  subtract_side_.assign(n, 0);
  bucket_max_.assign(n, 0);
}

int DynamicSpcIndex::ResolvedThreads() const {
  return options_.num_threads > 0 ? options_.num_threads : MaxThreads();
}

SpcResult DynamicSpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  // Vectorized galloping merge — bit-identical to MergeLabelCounts
  // (differential suite: tests/label_merge_simd_test.cc).
  return MergeLabelCountsFast(Labels(s), Labels(t));
}

double DynamicSpcIndex::StalenessRatio() const {
  return static_cast<double>(overlay_.OverlaidEntries()) /
         static_cast<double>(std::max<size_t>(1, base_->TotalEntries()));
}

void DynamicSpcIndex::MaybeRebuild() {
  if (options_.auto_rebuild && StalenessRatio() > options_.rebuild_threshold) {
    Rebuild();
  }
}

void DynamicSpcIndex::PublishMetrics() {
  obs_.ExportDelta(stats_);
  obs_.SetGauges(generation_, overlay_.OverlaidEntries(),
                 overlay_.OverlaidVertices(), base_->TotalEntries());
}

void DynamicSpcIndex::Rebuild() {
  WallTimer timer;
  obs_.rebuild_in_progress()->Set(1);
  recorder_->Record(obs::FlightEventKind::kRebuildStart, generation_,
                    overlay_.OverlaidEntries());
  Graph current = graph_.Materialize();
  BuildResult result = BuildIndex(current, options_.rebuild_options);
  base_graph_ = std::move(current);
  // A fresh shared base: snapshots captured from the old generation
  // keep the retired CSR alive through their shared_ptr.
  base_ = std::make_shared<const SpcIndex>(std::move(result.index));
  RefreshPackedBase();
  order_ = base_->Order();
  graph_.Rebase(&base_graph_);
  overlay_.Rebase(base_->LabelMap());
  ++generation_;
  ++stats_.rebuilds;
  const double elapsed = timer.ElapsedSeconds();
  stats_.rebuild_seconds += elapsed;
  obs_.rebuild_us()->Record(elapsed * 1e6);
  obs_.rebuild_in_progress()->Set(0);
  recorder_->Record(obs::FlightEventKind::kRebuildEnd, generation_,
                    static_cast<uint64_t>(elapsed * 1e6),
                    base_->TotalEntries());
  PublishMetrics();
}

Status DynamicSpcIndex::InsertEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.AddEdge(u, v));
  const double repair_before = stats_.repair_seconds;
  {
    ScopedTimer timer(&stats_.repair_seconds);
    obs::ScopedLatencyTimer latency(obs_.repair_us());
    const std::pair<VertexId, VertexId> edge{u, v};
    RepairInsertions({&edge, 1});
  }
  stats_.last_plan_us = 0.0;
  stats_.last_repair_us = (stats_.repair_seconds - repair_before) * 1e6;
  ++stats_.insertions_applied;
  ++generation_;
  MaybeRebuild();
  PublishMetrics();
  return Status::OK();
}

Status DynamicSpcIndex::DeleteEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.ValidateEndpoints(u, v));
  if (!graph_.HasEdge(u, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") does not exist");
  }
  const double repair_before = stats_.repair_seconds;
  {
    ScopedTimer timer(&stats_.repair_seconds);
    obs::ScopedLatencyTimer latency(obs_.repair_us());
    RepairDeletion(u, v);
  }
  stats_.last_plan_us = 0.0;
  stats_.last_repair_us = (stats_.repair_seconds - repair_before) * 1e6;
  ++stats_.deletions_applied;
  ++generation_;
  MaybeRebuild();
  PublishMetrics();
  return Status::OK();
}

Status DynamicSpcIndex::Apply(const EdgeUpdate& update) {
  return update.kind == EdgeUpdateKind::kInsert
             ? InsertEdge(update.u, update.v)
             : DeleteEdge(update.u, update.v);
}

// ------------------------------------------------------------- insertion

void DynamicSpcIndex::RepairInsertions(
    std::span<const std::pair<VertexId, VertexId>> edges) {
  // Seeds snapshot the *pre-repair* endpoint labels across every new
  // edge (see GatherInsertSeeds); the symmetric view seeds from both
  // endpoints of each edge.
  const SymmetricRepairView view = RepView();
  std::vector<std::pair<Rank, InsertSeed>> seeds;
  for (const auto& [a, b] : edges) {
    repair::GatherInsertSeeds(view, a, b, &seeds);
    repair::GatherInsertSeeds(view, b, a, &seeds);
  }
  repair::SortInsertSeeds(&seeds);
  repair::RunInsertRepairs(view, seeds, scratch_, &stats_);
}

// -------------------------------------------------------------- deletion

std::vector<uint32_t> DynamicSpcIndex::BfsDistances(VertexId source) {
  return repair::ViewBfsDistances(RepView(), source);
}

void DynamicSpcIndex::DetectAffectedSide(
    VertexId from, VertexId to, const std::vector<uint8_t>& hub_of_a,
    const std::vector<uint8_t>& hub_of_b, AffectedSide* side) {
  repair::DetectAffectedSide(RepView(), from, to, hub_of_a, hub_of_b, side);
}

void DynamicSpcIndex::ValidateDeletionSeeds(
    const std::vector<Rank>& full_ranks,
    const std::vector<Rank>& subtract_ranks,
    std::span<const LabelEntry> near_labels, VertexId near, VertexId far,
    const std::vector<uint8_t>& hub_of_a,
    const std::vector<uint8_t>& hub_of_b, std::vector<uint8_t>* seed_ok,
    std::vector<uint32_t>* seed_dist, std::vector<Count>* seed_count,
    std::vector<VertexId>* seed_far) {
  repair::ValidateDeletionSeeds(RepView(), full_ranks, subtract_ranks,
                                near_labels, near, far, hub_of_a, hub_of_b,
                                seed_ok, seed_dist, seed_count, seed_far);
}

void DynamicSpcIndex::MarkDistanceChanges(
    const std::vector<Rank>& sender_ranks,
    std::span<const uint32_t> sender_pre,
    const std::vector<Rank>& opposite_full_ranks,
    std::span<const uint32_t> opposite_pre,
    std::vector<uint8_t>* needs_full) {
  repair::MarkDistanceChanges(RepView(), sender_ranks, sender_pre,
                              opposite_full_ranks, opposite_pre, needs_full);
}

void DynamicSpcIndex::RepairDeletion(VertexId a, VertexId b) {
  repair::RepairContext ctx;
  ctx.scratch = &scratch_;
  ctx.stats = &stats_;
  ctx.sweep_threads = std::min(ResolvedThreads(), MaxThreads());
  const SymmetricRepairView view = RepView();
  repair::RepairEdgeDeletionPair(view, view, a, b, ctx, [&] {
    PSPC_CHECK(graph_.RemoveEdge(a, b).ok());
  });
}

bool DynamicSpcIndex::SubtractiveDeleteRepair(
    Rank hub_rank, VertexId start, uint32_t seed_dist, Count seed_count,
    uint32_t depth_cap, RegionView region, RepairScratch& s,
    LabelWriteSink& sink, DynamicStats* stats) {
  return repair::SubtractiveDeleteRepair(RepView(), hub_rank, start,
                                         seed_dist, seed_count, depth_cap,
                                         region, s, sink, stats);
}

bool DynamicSpcIndex::RepairHubAfterDeletion(
    Rank hub_rank, RegionView region, RepairScratch& s, LabelWriteSink& sink,
    DynamicStats* stats, const int32_t* claim_owner, int32_t claim_self) {
  return repair::RepairHubAfterDeletion(
      RepView(), hub_rank, region, s, sink, stats,
      std::min(ResolvedThreads(), MaxThreads()), claim_owner, claim_self);
}

}  // namespace pspc
