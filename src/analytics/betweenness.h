#ifndef PSPC_SRC_ANALYTICS_BETWEENNESS_H_
#define PSPC_SRC_ANALYTICS_BETWEENNESS_H_

#include <vector>

#include "src/common/types.h"
#include "src/label/spc_index.h"

/// Betweenness centrality on top of the SPC index (paper §I,
/// application 1): the pair dependency of `v` on `(s,t)` is
/// `sigma(s,v) * sigma(v,t) / sigma(s,t)` when `d(s,v) + d(v,t) ==
/// d(s,t)`, and every factor is a single index query — no graph
/// traversal. The exact variant sums all pairs (O(n^2) queries; small
/// graphs); the sampled variant scales the sum from a uniform pair
/// sample, the standard estimator the paper cites [Riondato &
/// Kornaropoulos].
namespace pspc {

/// Exact betweenness of `v`: sum of pair dependencies over all
/// unordered pairs {s, t} with s, t != v.
double BetweennessExact(const SpcIndex& index, VertexId v);

/// Unbiased estimate from `num_samples` uniform pairs (s != t, both
/// != v), scaled to the total number of unordered pairs.
double BetweennessSampled(const SpcIndex& index, VertexId v,
                          size_t num_samples, uint64_t seed);

/// Exact betweenness of every vertex via all-pairs index queries —
/// O(n^2) queries; test- and demo-scale only.
std::vector<double> AllBetweennessExact(const SpcIndex& index);

}  // namespace pspc

#endif  // PSPC_SRC_ANALYTICS_BETWEENNESS_H_
