#include "src/dynamic/stats_export.h"

#include "src/obs/metric_names.h"

namespace pspc {
namespace obs {

DynamicStatsExporter::DynamicStatsExporter(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      insertions_applied_(
          registry_->GetCounter(kDynamicInsertionsAppliedTotal)),
      deletions_applied_(registry_->GetCounter(kDynamicDeletionsAppliedTotal)),
      batches_applied_(registry_->GetCounter(kDynamicBatchesAppliedTotal)),
      updates_coalesced_(registry_->GetCounter(kDynamicUpdatesCoalescedTotal)),
      resumed_bfs_runs_(registry_->GetCounter(kDynamicResumedBfsRunsTotal)),
      full_hub_repairs_(registry_->GetCounter(kDynamicFullHubRepairsTotal)),
      subtract_repairs_(registry_->GetCounter(kDynamicSubtractRepairsTotal)),
      entries_inserted_(registry_->GetCounter(kDynamicEntriesInsertedTotal)),
      entries_renewed_(registry_->GetCounter(kDynamicEntriesRenewedTotal)),
      entries_erased_(registry_->GetCounter(kDynamicEntriesErasedTotal)),
      parallel_waves_(registry_->GetCounter(kDynamicParallelWavesTotal)),
      parallel_hub_runs_(registry_->GetCounter(kDynamicParallelHubRunsTotal)),
      deferred_hub_runs_(registry_->GetCounter(kDynamicDeferredHubRunsTotal)),
      rebuilds_(registry_->GetCounter(kDynamicRebuildsTotal)),
      generation_(registry_->GetGauge(kDynamicGeneration)),
      overlay_entries_(registry_->GetGauge(kDynamicOverlayEntries)),
      overlay_vertices_(registry_->GetGauge(kDynamicOverlayVertices)),
      base_entries_(registry_->GetGauge(kDynamicBaseEntries)),
      rebuild_in_progress_(registry_->GetGauge(kDynamicRebuildInProgress)),
      plan_us_(registry_->GetHistogram(kDynamicPlanUs)),
      repair_us_(registry_->GetHistogram(kDynamicRepairUs)),
      rebuild_us_(registry_->GetHistogram(kDynamicRebuildUs)) {}

void DynamicStatsExporter::ExportDelta(const DynamicStats& now) {
  const auto push = [](Counter* counter, size_t current, size_t previous) {
    if (current > previous) {
      counter->Increment(static_cast<uint64_t>(current - previous));
    }
  };
  push(insertions_applied_, now.insertions_applied, last_.insertions_applied);
  push(deletions_applied_, now.deletions_applied, last_.deletions_applied);
  push(batches_applied_, now.batches_applied, last_.batches_applied);
  push(updates_coalesced_, now.updates_coalesced, last_.updates_coalesced);
  push(resumed_bfs_runs_, now.resumed_bfs_runs, last_.resumed_bfs_runs);
  push(full_hub_repairs_, now.affected_hubs, last_.affected_hubs);
  push(subtract_repairs_, now.subtract_repairs, last_.subtract_repairs);
  push(entries_inserted_, now.entries_inserted, last_.entries_inserted);
  push(entries_renewed_, now.entries_renewed, last_.entries_renewed);
  push(entries_erased_, now.entries_erased, last_.entries_erased);
  push(parallel_waves_, now.parallel_waves, last_.parallel_waves);
  push(parallel_hub_runs_, now.parallel_hub_runs, last_.parallel_hub_runs);
  push(deferred_hub_runs_, now.deferred_hub_runs, last_.deferred_hub_runs);
  push(rebuilds_, now.rebuilds, last_.rebuilds);
  last_ = now;
}

void DynamicStatsExporter::SetGauges(uint64_t generation,
                                     size_t overlay_entries,
                                     size_t overlay_vertices,
                                     size_t base_entries) {
  generation_->Set(static_cast<int64_t>(generation));
  overlay_entries_->Set(static_cast<int64_t>(overlay_entries));
  overlay_vertices_->Set(static_cast<int64_t>(overlay_vertices));
  base_entries_->Set(static_cast<int64_t>(base_entries));
}

}  // namespace obs
}  // namespace pspc
