// Worked example: serving shortest-path counts while the graph churns.
//
// A static 2-hop index answers queries in microseconds but goes stale
// the moment an edge changes. This example builds a `DynamicSpcIndex`
// over a synthetic social network, streams edge insertions and
// deletions through it, and shows that (a) every answer tracks the
// live graph exactly (cross-checked against an online BFS), and (b)
// repairing labels is orders of magnitude cheaper than rebuilding,
// with the staleness policy folding the accumulated overlay back into
// a clean base index when it grows past the configured threshold.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/graph/generators.h"

namespace {

void PrintQuery(const pspc::DynamicSpcIndex& index, pspc::VertexId s,
                pspc::VertexId t) {
  const pspc::SpcResult r = index.Query(s, t);
  if (r.distance == pspc::kInfSpcDistance) {
    std::printf("  SPC(%u, %u) = unreachable\n", s, t);
  } else {
    std::printf("  SPC(%u, %u) = distance %u with %llu shortest paths\n", s,
                t, r.distance, static_cast<unsigned long long>(r.count));
  }
}

}  // namespace

int main() {
  // A 2,000-vertex preferential-attachment graph stands in for a small
  // social network (see DESIGN.md for the dataset mapping).
  const pspc::Graph graph = pspc::GenerateBarabasiAlbert(2000, 3, 42);
  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  pspc::WallTimer build_timer;
  pspc::DynamicOptions options;
  options.rebuild_threshold = 0.35;  // rebuild at 35% overlay growth
  pspc::DynamicSpcIndex index(graph, pspc::BuildOptions{}, options);
  const double build_seconds = build_timer.ElapsedSeconds();
  std::printf("initial build: %.3fs, %zu label entries\n\n", build_seconds,
              index.BaseIndex().TotalEntries());

  std::printf("before any update:\n");
  PrintQuery(index, 17, 1234);

  // --- single-edge insertion -------------------------------------------
  pspc::WallTimer update_timer;
  if (const pspc::Status st = index.InsertEdge(17, 1234); !st.ok()) {
    std::printf("insert skipped: %s\n", st.ToString().c_str());
  }
  std::printf("\ninserted edge {17, 1234} in %.3f ms:\n",
              update_timer.ElapsedMillis());
  PrintQuery(index, 17, 1234);

  // --- single-edge deletion --------------------------------------------
  const pspc::VertexId hub_neighbor = graph.Neighbors(0)[0];
  update_timer.Reset();
  if (const pspc::Status st = index.DeleteEdge(0, hub_neighbor); !st.ok()) {
    std::printf("delete skipped: %s\n", st.ToString().c_str());
  }
  std::printf("\ndeleted edge {0, %u} in %.3f ms:\n", hub_neighbor,
              update_timer.ElapsedMillis());
  PrintQuery(index, 0, hub_neighbor);

  // --- a churn stream with online verification -------------------------
  std::printf("\nstreaming 200 random updates...\n");
  pspc::Rng rng(7);
  std::vector<std::pair<pspc::VertexId, pspc::VertexId>> edges;
  for (pspc::VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const pspc::VertexId v : graph.Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  size_t applied = 0, verified = 0;
  update_timer.Reset();
  while (applied < 200) {
    // Half the churn deletes an existing edge, half inserts a new one.
    pspc::Status st;
    if (rng.NextBool(0.5)) {
      const size_t i = rng.NextBounded(edges.size());
      st = index.DeleteEdge(edges[i].first, edges[i].second);
      if (st.ok()) {
        edges[i] = edges.back();
        edges.pop_back();
      }
    } else {
      const auto u = static_cast<pspc::VertexId>(rng.NextBounded(2000));
      const auto v = static_cast<pspc::VertexId>(rng.NextBounded(2000));
      if (u == v || index.HasEdge(u, v)) continue;
      st = index.InsertEdge(u, v);
      if (st.ok()) edges.push_back({std::min(u, v), std::max(u, v)});
    }
    if (!st.ok()) continue;
    ++applied;
    if (applied % 40 == 0) {
      // Spot-check against the online BFS oracle on the live graph.
      const pspc::Graph current = index.MaterializeGraph();
      const auto s = static_cast<pspc::VertexId>(rng.NextBounded(2000));
      const auto t = static_cast<pspc::VertexId>(rng.NextBounded(2000));
      const pspc::SpcResult expected = pspc::BfsSpcPair(current, s, t);
      const pspc::SpcResult got = index.Query(s, t);
      std::printf("  after %zu updates: SPC(%u,%u) index=(%u,%llu) "
                  "bfs=(%u,%llu) %s | staleness %.4f\n",
                  applied, s, t, got.distance,
                  static_cast<unsigned long long>(got.count),
                  expected.distance,
                  static_cast<unsigned long long>(expected.count),
                  got == expected ? "OK" : "MISMATCH", index.StalenessRatio());
      ++verified;
    }
  }
  std::printf("%zu updates in %.3fs; %zu oracle spot-checks\n\n", applied,
              update_timer.ElapsedSeconds(), verified);

  std::printf("%s\n", index.Stats().ToString().c_str());
  std::printf("\namortized repair: %.3f ms/update vs %.3fs initial build\n",
              index.Stats().repair_seconds * 1e3 /
                  static_cast<double>(applied + 2),
              build_seconds);
  return 0;
}
