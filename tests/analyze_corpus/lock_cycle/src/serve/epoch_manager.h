#pragma once
#include "src/common/mutex.h"

class SnapshotManager;

class EpochManager {
 public:
  void Enter();
  void Attach(SnapshotManager* snapshots);

 private:
  spc::Mutex overflow_mu_;
  SnapshotManager* snapshots_ = nullptr;
};
