#ifndef PSPC_SRC_ORDER_TREE_DECOMPOSITION_H_
#define PSPC_SRC_ORDER_TREE_DECOMPOSITION_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/order/vertex_order.h"

/// Tree-decomposition-based "road network order" (paper §III-G).
///
/// Minimum-degree elimination: repeatedly remove the vertex of smallest
/// degree from a working graph, connecting its neighbors into a clique
/// (the fill-in); the removal sequence is the elimination order. The
/// vertex-rank order ranks *later-eliminated* vertices higher — they
/// sit nearer the top of the vertex hierarchy — exactly the paper's
/// "append vertices in Q into R from the back of the queue to the
/// front". The max bag size along the way upper-bounds the treewidth.
namespace pspc {

struct TreeDecompositionResult {
  /// Rank order: rank 0 = eliminated last (most central vertex).
  VertexOrder order;
  /// Elimination sequence: `elimination[i]` is the i-th removed vertex.
  std::vector<VertexId> elimination;
  /// Max neighborhood size at elimination time; treewidth <= this.
  VertexId max_bag_size = 0;
};

/// Options bounding the fill-in explosion on dense cores: once every
/// remaining vertex has working degree > `degree_cap`, the remaining
/// vertices are appended in descending-degree order instead of being
/// eliminated (the standard core/fringe cutoff used by CH/H2H-style
/// systems; 0 disables the cap).
TreeDecompositionResult MinDegreeElimination(const Graph& graph,
                                             VertexId degree_cap);

/// Convenience: the road-network vertex order with a default cap.
VertexOrder RoadNetworkOrder(const Graph& graph);

}  // namespace pspc

#endif  // PSPC_SRC_ORDER_TREE_DECOMPOSITION_H_
