#include "src/reduce/reduced_index.h"

#include <algorithm>
#include <span>

#include "src/common/logging.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/core/hp_spc_builder.h"
#include "src/core/pspc_builder.h"

namespace pspc {

ReducedSpcIndex ReducedSpcIndex::Build(const Graph& graph,
                                       const ReductionOptions& options) {
  ReducedSpcIndex r;
  r.num_original_ = graph.NumVertices();
  r.has_one_shell_ = options.use_one_shell;
  r.has_equivalence_ = options.use_equivalence;

  const Graph* current = &graph;
  if (r.has_one_shell_) {
    r.shell_ = OneShellReduction::Build(graph);
    current = &r.shell_.Core();
  }
  std::span<const Count> weights;
  if (r.has_equivalence_) {
    r.equiv_ = EquivalenceReduction::Build(*current);
    current = &r.equiv_.Reduced();
    weights = r.equiv_.Weights();
  }

  WallTimer order_timer;
  const VertexOrder order = ComputeOrder(*current, options.build.ordering,
                                         options.build.hybrid_delta);
  const double ordering_seconds = order_timer.ElapsedSeconds();

  if (options.build.algorithm == Algorithm::kHpSpc) {
    HpSpcBuildResult hp = BuildHpSpcIndex(*current, order, weights);
    r.index_ = std::move(hp.index);
    r.stats_ = std::move(hp.stats);
  } else {
    PspcOptions popts;
    popts.paradigm = options.build.paradigm;
    popts.schedule = options.build.schedule;
    popts.num_threads = options.build.num_threads;
    popts.num_landmarks = options.build.num_landmarks;
    popts.use_landmark_filter = options.build.use_landmark_filter;
    popts.vertex_weights = weights;
    PspcBuildResult ps = BuildPspcIndex(*current, order, popts);
    r.index_ = std::move(ps.index);
    r.stats_ = std::move(ps.stats);
  }
  r.stats_.ordering_seconds = ordering_seconds;
  return r;
}

SpcResult ReducedSpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK(s < num_original_ && t < num_original_);
  if (s == t) return {0, 1};

  VertexId core_s = s, core_t = t;
  uint32_t tree_dist = 0;
  if (has_one_shell_) {
    if (shell_.Anchor(s) == shell_.Anchor(t)) {
      // Same fringe tree (or one is the other's anchor): the unique
      // tree path is the unique shortest path.
      return shell_.TreeQuery(s, t);
    }
    tree_dist = static_cast<uint32_t>(shell_.Depth(s)) + shell_.Depth(t);
    core_s = shell_.CoreId(shell_.Anchor(s));
    core_t = shell_.CoreId(shell_.Anchor(t));
  }

  const SpcResult inner = InnerQuery(core_s, core_t);
  if (inner.distance == kInfSpcDistance) return {kInfSpcDistance, 0};
  return {inner.distance + tree_dist, inner.count};
}

SpcResult ReducedSpcIndex::InnerQuery(VertexId core_s, VertexId core_t) const {
  if (core_s == core_t) return {0, 1};
  if (!has_equivalence_) return index_.Query(core_s, core_t);
  const VertexId rs = equiv_.ClassOf(core_s);
  const VertexId rt = equiv_.ClassOf(core_t);
  if (rs == rt) return equiv_.SameClassQuery(rs);
  return WeightedQuery(rs, rt);
}

SpcResult ReducedSpcIndex::WeightedQuery(VertexId rs, VertexId rt) const {
  // Eq. (1)/(2) with the multiplicity adjustment: a hub is an internal
  // vertex of the recombined path unless it coincides with an endpoint,
  // so its class weight multiplies the term (paper §IV-B's "weight
  // assigned depending on the quantity of equivalents").
  const auto ls = index_.Labels(rs);
  const auto lt = index_.Labels(rt);
  const Rank rank_s = index_.Order().RankOf(rs);
  const Rank rank_t = index_.Order().RankOf(rt);
  uint32_t best = kInfSpcDistance;
  Count count = 0;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub_rank < lt[j].hub_rank) {
      ++i;
    } else if (ls[i].hub_rank > lt[j].hub_rank) {
      ++j;
    } else {
      const Rank hr = ls[i].hub_rank;
      const uint32_t d =
          static_cast<uint32_t>(ls[i].dist) + static_cast<uint32_t>(lt[j].dist);
      if (d <= best) {
        Count term = SatMul(ls[i].count, lt[j].count);
        if (hr != rank_s && hr != rank_t) {
          term = SatMul(term, equiv_.Weight(index_.Order().VertexAt(hr)));
        }
        if (d < best) {
          best = d;
          count = term;
        } else {
          count = SatAdd(count, term);
        }
      }
      ++i;
      ++j;
    }
  }
  if (best == kInfSpcDistance) return {kInfSpcDistance, 0};
  return {best, count};
}

}  // namespace pspc
