#ifndef PSPC_TOOLS_LINT_RULES_H_
#define PSPC_TOOLS_LINT_RULES_H_

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

/// spc_lint's rule engine: project-specific source invariants the
/// compiler cannot check. Shared between the `spc_lint` CLI and the
/// corpus test suite (tests/lint_corpus_test.cc) so the tests exercise
/// exactly the shipping rules. Dependency-free by design (std only) —
/// the CI lint lane builds it in seconds with no library to link.
///
/// Rules (ids are stable; diagnostics print `file:line: [id] msg`):
///   metric-literal    every "serve."/"dynamic." string literal in the
///                     scanned tree must appear in the
///                     src/obs/metric_names.h catalog (the static
///                     complement of the runtime schema check)
///   raw-mutex         no std::mutex / lock_guard / unique_lock /
///                     condition_variable outside src/common/mutex.h —
///                     locking goes through the annotated spc::Mutex
///                     wrapper so clang -Wthread-safety can see it
///   bare-relaxed      every memory_order_relaxed use carries a
///                     justification comment on the same line or
///                     within the five lines above; one comment may
///                     cover a contiguous run of relaxed lines (the
///                     seqlock publish/read idiom)
///   hot-path-call     no rand()/srand()/time()/printf-family calls in
///                     src/serve + src/dynamic (non-deterministic or
///                     blocking work on the serving/repair hot paths)
///   include-guard     headers open with the canonical
///                     PSPC_<PATH>_H_ include guard (or #pragma once)
///   tsa-escape        NO_THREAD_SAFETY_ANALYSIS is banned outside the
///                     macro's own definition — annotate or
///                     restructure, never opt out
///   void-cast         `(void)expr` result discards carry a
///                     justification comment on the same line or
///                     within the five lines above — the escape hatch
///                     for `[[nodiscard]]` Status/Result (and the
///                     spc_analyze must-use pass) must say why the
///                     value is safe to drop
namespace spclint {

struct Violation {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Per-line views of one translation unit after a single lexer pass.
/// Line structure is preserved so diagnostics map back exactly.
struct ScrubbedSource {
  /// Comments and string/char literals blanked (identifier-safe scan).
  std::vector<std::string> code;
  /// Comments blanked, string literals kept (metric-literal scan).
  std::vector<std::string> code_with_strings;
  /// Line contains comment text (full-line, trailing, or inside a
  /// block comment).
  std::vector<bool> has_comment;
};

inline ScrubbedSource Scrub(const std::string& content) {
  ScrubbedSource out;
  std::string code_line;
  std::string str_line;
  bool line_has_comment = false;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  char prev_code = '\0';  // last code char seen (digit-separator check)

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.code_with_strings.push_back(str_line);
    out.has_comment.push_back(line_has_comment);
    code_line.clear();
    str_line.clear();
    line_has_comment = (state == State::kBlockComment);
  };

  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line_has_comment = true;
          code_line += "  ";
          str_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line_has_comment = true;
          code_line += "  ";
          str_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw strings are deliberately not special-cased: the tree
          // bans them implicitly (none exist) and a raw string with
          // embedded quotes would only blank conservatively.
          state = State::kString;
          code_line += ' ';
          str_line += '"';
        } else if (c == '\'' &&
                   !(std::isdigit(static_cast<unsigned char>(prev_code)) &&
                     std::isdigit(static_cast<unsigned char>(next)))) {
          // A quote between digits is a C++14 digit separator
          // (10'000), not a char literal.
          state = State::kChar;
          code_line += ' ';
          str_line += ' ';
        } else {
          code_line += c;
          str_line += c;
          prev_code = c;
        }
        break;
      case State::kLineComment:
        code_line += ' ';
        str_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          str_line += "  ";
          ++i;
        } else {
          code_line += ' ';
          str_line += ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        const bool keep = state == State::kString;  // str view keeps strings
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line += "  ";
          if (keep) {
            str_line += c;
            str_line += next;
          } else {
            str_line += "  ";
          }
          ++i;
        } else if (c == quote) {
          state = State::kCode;
          code_line += ' ';
          str_line += keep ? '"' : ' ';
        } else {
          code_line += ' ';
          str_line += keep ? c : ' ';
        }
        break;
      }
    }
  }
  flush_line();
  return out;
}

/// Extracts the double-quoted string literals of one scrubbed line
/// (code_with_strings view), unescaped enough for catalog comparison.
inline std::vector<std::string> StringLiterals(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    if (line[i] != '"') {
      ++i;
      continue;
    }
    std::string literal;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      literal += line[i];
      ++i;
    }
    ++i;  // closing quote (or end of line for an unterminated literal)
    out.push_back(literal);
  }
  return out;
}

/// How the rules see one file. Derived from its repo-relative path.
struct FileClass {
  bool is_header = false;
  bool is_hot_path = false;       // src/serve/ or src/dynamic/
  bool is_metric_catalog = false; // src/obs/metric_names.h
  bool is_mutex_wrapper = false;  // src/common/mutex.h
  bool is_annotations = false;    // src/common/thread_annotations.h
  std::string expected_guard;     // canonical PSPC_..._H_ (headers)
};

inline std::string CanonicalGuard(const std::string& relative_path) {
  std::string guard = "PSPC_";
  for (const char c : relative_path) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

inline FileClass ClassifyFile(const std::string& relative_path) {
  FileClass fc;
  const auto ends_with = [&](std::string_view suffix) {
    return relative_path.size() >= suffix.size() &&
           relative_path.compare(relative_path.size() - suffix.size(),
                                 suffix.size(), suffix) == 0;
  };
  fc.is_header = ends_with(".h") || ends_with(".hpp");
  fc.is_hot_path = relative_path.rfind("src/serve/", 0) == 0 ||
                   relative_path.rfind("src/dynamic/", 0) == 0;
  fc.is_metric_catalog = relative_path == "src/obs/metric_names.h";
  fc.is_mutex_wrapper = relative_path == "src/common/mutex.h";
  fc.is_annotations = relative_path == "src/common/thread_annotations.h";
  if (fc.is_header) fc.expected_guard = CanonicalGuard(relative_path);
  return fc;
}

/// True if `token` occurs in `line` as a standalone identifier (not a
/// substring of a longer identifier or a member/namespace tail).
inline bool HasBannedCall(const std::string& line, std::string_view token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const size_t end = pos + token.size();
    const char before = pos == 0 ? '\0' : line[pos - 1];
    // Reject `foo_time(`, `x.time(`, `x->time(`, `str::time(` — but a
    // leading `std::` is still the banned function.
    bool qualified_std = false;
    if (before == ':' && pos >= 5 && line.compare(pos - 5, 5, "std::") == 0) {
      const char pre = pos == 5 ? '\0' : line[pos - 6];
      qualified_std = !(std::isalnum(static_cast<unsigned char>(pre)) ||
                        pre == '_' || pre == ':' || pre == '.' || pre == '>');
    }
    const bool boundary_ok =
        qualified_std ||
        !(std::isalnum(static_cast<unsigned char>(before)) || before == '_' ||
          before == ':' || before == '.' || before == '>');
    size_t after = end;
    while (after < line.size() && line[after] == ' ') ++after;
    if (boundary_ok && after < line.size() && line[after] == '(') return true;
    pos = end;
  }
  return false;
}

struct LintOptions {
  /// Allowed metric names (parsed from src/obs/metric_names.h).
  std::set<std::string> metric_catalog;
};

/// Lints one file's content. `relative_path` drives classification and
/// appears verbatim in diagnostics.
inline std::vector<Violation> LintFile(const std::string& relative_path,
                                       const std::string& content,
                                       const LintOptions& options) {
  std::vector<Violation> violations;
  const FileClass fc = ClassifyFile(relative_path);
  const ScrubbedSource src = Scrub(content);
  const auto add = [&](size_t line, const char* rule, std::string message) {
    violations.push_back(
        {relative_path, line + 1, rule, std::move(message)});
  };

  // Composed as adjacent literals so the linter's own source never
  // trips the metric-literal rule.
  const std::string kServePrefix = "serve" ".";
  const std::string kDynamicPrefix = "dynamic" ".";

  static constexpr std::string_view kRawLockTypes[] = {
      "std" "::mutex",         "std" "::recursive_mutex",
      "std" "::shared_mutex",  "std" "::timed_mutex",
      "std" "::lock_guard",    "std" "::unique_lock",
      "std" "::scoped_lock",   "std" "::shared_lock",
      "std" "::condition_variable",
  };
  static constexpr std::string_view kBannedHotCalls[] = {
      "rand", "srand", "time", "printf", "fprintf", "sprintf", "puts",
  };

  bool relaxed_justified_above = false;
  for (size_t i = 0; i < src.code.size(); ++i) {
    const std::string& code = src.code[i];

    if (!fc.is_metric_catalog) {
      for (const std::string& literal :
           StringLiterals(src.code_with_strings[i])) {
        const bool metric_like =
            literal.rfind(kServePrefix, 0) == 0 ||
            literal.rfind(kDynamicPrefix, 0) == 0;
        if (metric_like && options.metric_catalog.count(literal) == 0) {
          add(i, "metric-literal",
              "metric name \"" + literal +
                  "\" is not in the src/obs/metric_names.h catalog");
        }
      }
    }

    if (!fc.is_mutex_wrapper) {
      for (const std::string_view type : kRawLockTypes) {
        if (code.find(type) != std::string::npos) {
          add(i, "raw-mutex",
              std::string(type) +
                  " outside src/common/mutex.h; use the annotated "
                  "spc::Mutex / spc::MutexLock / spc::CondVar wrappers");
          break;
        }
      }
    }

    const size_t relaxed_pos = code.find("memory_order_relaxed");
    if (relaxed_pos != std::string::npos) {
      bool justified = false;
      for (size_t back = 0; back <= 5 && back <= i; ++back) {
        if (src.has_comment[i - back]) {
          justified = true;
          break;
        }
      }
      // A justified relaxed line extends cover to a directly adjacent
      // relaxed line (contiguous clusters share one comment).
      if (!justified && i > 0 && relaxed_justified_above &&
          src.code[i - 1].find("memory_order_relaxed") !=
              std::string::npos) {
        justified = true;
      }
      relaxed_justified_above = justified;
      if (!justified) {
        add(i, "bare-relaxed",
            "memory_order_relaxed without a justification comment on "
            "this line or the five lines above");
      }
    } else {
      relaxed_justified_above = false;
    }

    if (fc.is_hot_path) {
      for (const std::string_view call : kBannedHotCalls) {
        if (HasBannedCall(code, call)) {
          add(i, "hot-path-call",
              std::string(call) +
                  "() on a serving/repair hot path (src/serve, "
                  "src/dynamic ban non-deterministic/blocking libc "
                  "calls)");
        }
      }
    }

    if (!fc.is_annotations &&
        code.find("NO_THREAD_SAFETY_ANALYSIS") != std::string::npos) {
      add(i, "tsa-escape",
          "NO_THREAD_SAFETY_ANALYSIS is banned: annotate the locking "
          "contract (or restructure) instead of opting out");
    }

    // `(void)x` deliberately discards a value; the discard must be
    // justified in a comment (same idiom as bare-relaxed). `f(void)`
    // parameter lists and `(void*)` casts don't match: the cast must
    // be followed by an identifier.
    const size_t void_pos = code.find("(void)");
    if (void_pos != std::string::npos) {
      size_t after = void_pos + 6;
      while (after < code.size() && code[after] == ' ') ++after;
      const char target = after < code.size() ? code[after] : '\0';
      if (std::isalpha(static_cast<unsigned char>(target)) ||
          target == '_') {
        bool justified = false;
        for (size_t back = 0; back <= 5 && back <= i; ++back) {
          if (src.has_comment[i - back]) {
            justified = true;
            break;
          }
        }
        if (!justified) {
          add(i, "void-cast",
              "(void) cast without a justification comment on this line "
              "or the five lines above — say why the value is safe to "
              "drop");
        }
      }
    }
  }

  if (fc.is_header) {
    // First non-blank code line must open the guard: `#pragma once` or
    // `#ifndef <canonical>` immediately followed by `#define
    // <canonical>`.
    size_t first = 0;
    while (first < src.code.size() &&
           src.code[first].find_first_not_of(" \t") == std::string::npos) {
      ++first;
    }
    const auto trimmed = [&](size_t i) {
      const std::string& line = src.code[i];
      const size_t b = line.find_first_not_of(" \t");
      if (b == std::string::npos) return std::string();
      const size_t e = line.find_last_not_of(" \t");
      return line.substr(b, e - b + 1);
    };
    bool ok = false;
    if (first < src.code.size()) {
      const std::string open = trimmed(first);
      if (open == "#pragma once") {
        ok = true;
      } else if (open == "#ifndef " + fc.expected_guard) {
        size_t next = first + 1;
        while (next < src.code.size() && trimmed(next).empty()) ++next;
        ok = next < src.code.size() &&
             trimmed(next) == "#define " + fc.expected_guard;
      }
    }
    if (!ok) {
      add(first < src.code.size() ? first : 0, "include-guard",
          "header must open with `#ifndef " + fc.expected_guard +
              "` / `#define " + fc.expected_guard + "` (or #pragma once)");
    }
  }

  return violations;
}

/// Parses the allowed metric-name set out of the catalog header: every
/// string literal that looks like a dotted metric name.
inline std::set<std::string> ParseMetricCatalog(const std::string& content) {
  std::set<std::string> catalog;
  const ScrubbedSource src = Scrub(content);
  for (const std::string& line : src.code_with_strings) {
    for (const std::string& literal : StringLiterals(line)) {
      if (literal.find('.') != std::string::npos &&
          literal.find(' ') == std::string::npos && !literal.empty()) {
        catalog.insert(literal);
      }
    }
  }
  return catalog;
}

inline bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Lints the repo rooted at `root` (the directories the invariants
/// cover: src/, tools/, examples/, bench/, tests/ — minus the golden
/// violation corpora, which are deliberately bad). Returns all
/// violations, sorted by path then line. Missing metric catalog is
/// itself an error (`*error` set, non-empty).
inline std::vector<Violation> LintTree(const std::filesystem::path& root,
                                       std::string* error) {
  std::vector<Violation> violations;
  error->clear();

  LintOptions options;
  {
    std::string catalog_content;
    if (!ReadFile(root / "src/obs/metric_names.h", &catalog_content)) {
      *error = "cannot read src/obs/metric_names.h under " + root.string();
      return violations;
    }
    options.metric_catalog = ParseMetricCatalog(catalog_content);
    if (options.metric_catalog.empty()) {
      *error = "metric catalog parsed empty from src/obs/metric_names.h";
      return violations;
    }
  }

  static constexpr std::string_view kScannedDirs[] = {
      "src", "tools", "examples", "bench", "tests"};
  std::vector<std::filesystem::path> files;
  for (const std::string_view dir : kScannedDirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::is_directory(base)) continue;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const std::filesystem::path& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) {
      *error = "cannot read " + path.string();
      return violations;
    }
    const std::string relative =
        std::filesystem::relative(path, root).generic_string();
    // The golden corpora are violations on purpose.
    if (relative.rfind("tests/lint_corpus/", 0) == 0 ||
        relative.rfind("tests/analyze_corpus/", 0) == 0) {
      continue;
    }
    std::vector<Violation> file_violations =
        LintFile(relative, content, options);
    violations.insert(violations.end(), file_violations.begin(),
                      file_violations.end());
  }
  return violations;
}

}  // namespace spclint

#endif  // PSPC_TOOLS_LINT_RULES_H_
