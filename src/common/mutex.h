#ifndef PSPC_SRC_COMMON_MUTEX_H_
#define PSPC_SRC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

/// The project's annotated locking primitives.
///
/// Every mutex in the concurrent subsystems goes through `spc::Mutex`
/// (never raw `std::mutex` — `spc_lint` enforces this) so that Clang's
/// thread-safety analysis can see acquisitions and releases: members
/// are declared `GUARDED_BY(mu_)`, locked helpers `REQUIRES(mu_)`, and
/// `clang++ -Wthread-safety` then proves — at compile time, on every
/// path — that no guarded field is ever touched without its lock.
///
/// Waits are written as explicit condition loops
/// (`while (!pred) cv_.Wait(mu_);`) rather than predicate lambdas:
/// the analysis checks the loop body directly, whereas a lambda handed
/// to `std::condition_variable::wait` is opaque to it.
namespace pspc {
namespace spc {

class CondVar;

/// Annotated exclusive mutex. Declare `mutable` when const methods
/// lock it (the std::mutex convention this wraps).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the annotated stand-in for std::lock_guard /
/// std::unique_lock. `Unlock()`/`Lock()` support the
/// release-early-to-notify and drop-across-a-callback patterns; the
/// destructor releases only if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to notify a condition variable without the
  /// woken thread immediately blocking on the lock).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable over `spc::Mutex`. Wait/WaitFor take the Mutex
/// itself (caller must hold it — enforced by REQUIRES), so the
/// analysis knows the lock is held around the wait and re-held after.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, re-acquires. As with any
  /// condition wait, call in a loop re-checking the predicate.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait with a timeout; returns std::cv_status::timeout iff the
  /// duration elapsed without a notification.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace spc
}  // namespace pspc

#endif  // PSPC_SRC_COMMON_MUTEX_H_
