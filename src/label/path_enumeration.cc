#include "src/label/path_enumeration.h"

#include "src/common/logging.h"

namespace pspc {
namespace {

void Dfs(const Graph& graph, const SpcIndex& index, VertexId u, VertexId t,
         uint32_t remaining, size_t limit, std::vector<VertexId>& path,
         std::vector<std::vector<VertexId>>& out) {
  if (out.size() >= limit) return;
  if (u == t) {
    out.push_back(path);
    return;
  }
  // remaining >= 1 here; a neighbor continues a shortest path iff its
  // distance to t is exactly one less.
  for (VertexId v : graph.Neighbors(u)) {
    if (out.size() >= limit) return;
    if (index.Query(v, t).distance == remaining - 1) {
      path.push_back(v);
      Dfs(graph, index, v, t, remaining - 1, limit, path, out);
      path.pop_back();
    }
  }
}

}  // namespace

std::vector<std::vector<VertexId>> EnumerateShortestPaths(
    const Graph& graph, const SpcIndex& index, VertexId s, VertexId t,
    size_t limit) {
  PSPC_CHECK(s < graph.NumVertices() && t < graph.NumVertices());
  std::vector<std::vector<VertexId>> out;
  if (limit == 0) return out;
  const SpcResult r = index.Query(s, t);
  if (r.distance == kInfSpcDistance) return out;
  std::vector<VertexId> path{s};
  Dfs(graph, index, s, t, r.distance, limit, path, out);
  return out;
}

}  // namespace pspc
