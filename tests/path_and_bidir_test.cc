#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/baseline/bidirectional_spc.h"
#include "src/core/pspc_builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/label/path_enumeration.h"
#include "src/label/query_engine.h"
#include "src/order/degree_order.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

using pspc::testing::AllPairs;

SpcIndex MakeIndex(const Graph& g) {
  PspcOptions o;
  o.num_landmarks = 4;
  return BuildPspcIndex(g, DegreeOrder(g), o).index;
}

// ------------------------------------------------ BidirectionalSpc --

TEST(BidirectionalSpcTest, MatchesOracleOnClassics) {
  for (const Graph& g : {GeneratePath(9), GenerateCycle(10),
                         GenerateComplete(6), GenerateStar(7),
                         GenerateDiamondLadder(6, 3)}) {
    for (const auto& [s, t] : AllPairs(g.NumVertices())) {
      ASSERT_EQ(BidirectionalSpc(g, s, t), BfsSpcPair(g, s, t))
          << "pair (" << s << "," << t << ")";
    }
  }
}

TEST(BidirectionalSpcTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = GenerateErdosRenyi(70, 150, seed);
    for (const auto& [s, t] : AllPairs(70)) {
      ASSERT_EQ(BidirectionalSpc(g, s, t), BfsSpcPair(g, s, t))
          << "seed " << seed << " pair (" << s << "," << t << ")";
    }
  }
}

TEST(BidirectionalSpcTest, SelfAndDisconnected) {
  const Graph g = MakeGraph(5, {{0, 1}, {2, 3}, {3, 4}});
  EXPECT_EQ(BidirectionalSpc(g, 2, 2), (SpcResult{0, 1}));
  EXPECT_EQ(BidirectionalSpc(g, 0, 4), (SpcResult{kInfSpcDistance, 0}));
  EXPECT_EQ(BidirectionalSpc(g, 2, 4), (SpcResult{2, 1}));
}

TEST(BidirectionalSpcTest, AsymmetricComponentSizes) {
  // s in a tiny component appendage, t deep in a big blob: exercises
  // the smaller-frontier alternation and the exhausted-side fallback.
  GraphBuilder b(64);
  const Graph blob = GenerateComplete(60);
  for (VertexId u = 0; u < 60; ++u) {
    for (VertexId v : blob.Neighbors(u)) {
      if (u < v) b.AddEdge(u, v);
    }
  }
  b.AddEdge(0, 60);
  b.AddEdge(60, 61);
  b.AddEdge(61, 62);
  b.AddEdge(62, 63);
  const Graph g = b.Build();
  for (VertexId t = 0; t < 60; ++t) {
    ASSERT_EQ(BidirectionalSpc(g, 63, t), BfsSpcPair(g, 63, t));
  }
}

TEST(BidirectionalSpcTest, AgreesWithIndexOnWorkload) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 77);
  const SpcIndex index = MakeIndex(g);
  for (const auto& [s, t] : MakeRandomQueries(300, 400, 5)) {
    ASSERT_EQ(BidirectionalSpc(g, s, t), index.Query(s, t));
  }
}

// ------------------------------------------- EnumerateShortestPaths --

bool IsSimplePath(const Graph& g, const std::vector<VertexId>& p) {
  std::set<VertexId> seen(p.begin(), p.end());
  if (seen.size() != p.size()) return false;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    if (!g.HasEdge(p[i], p[i + 1])) return false;
  }
  return true;
}

TEST(PathEnumerationTest, CycleHasExactlyTwoPaths) {
  const Graph g = GenerateCycle(8);
  const SpcIndex index = MakeIndex(g);
  const auto paths = EnumerateShortestPaths(g, index, 0, 4, 100);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(paths[1], (std::vector<VertexId>{0, 7, 6, 5, 4}));
}

TEST(PathEnumerationTest, AllPathsAreSimpleShortestAndDistinct) {
  const Graph g = GenerateErdosRenyi(50, 140, 11);
  const SpcIndex index = MakeIndex(g);
  for (const auto& [s, t] : AllPairs(50)) {
    const SpcResult r = index.Query(s, t);
    if (r.distance == kInfSpcDistance) continue;
    const auto paths = EnumerateShortestPaths(g, index, s, t, 50);
    const size_t expected = std::min<Count>(r.count, 50);
    ASSERT_EQ(paths.size(), expected) << s << "," << t;
    std::set<std::vector<VertexId>> uniq(paths.begin(), paths.end());
    ASSERT_EQ(uniq.size(), paths.size());
    for (const auto& p : paths) {
      ASSERT_EQ(p.size(), r.distance + 1u);
      ASSERT_EQ(p.front(), s);
      ASSERT_EQ(p.back(), t);
      ASSERT_TRUE(IsSimplePath(g, p));
    }
  }
}

TEST(PathEnumerationTest, LimitTruncates) {
  const Graph g = GenerateDiamondLadder(5, 4);  // 64 shortest paths
  const SpcIndex index = MakeIndex(g);
  const VertexId t = g.NumVertices() - 1;
  EXPECT_EQ(EnumerateShortestPaths(g, index, 0, t, 10).size(), 10u);
  EXPECT_EQ(EnumerateShortestPaths(g, index, 0, t, 1000).size(), 64u);
  EXPECT_TRUE(EnumerateShortestPaths(g, index, 0, t, 0).empty());
}

TEST(PathEnumerationTest, SelfAndUnreachable) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  const SpcIndex index = MakeIndex(g);
  const auto self = EnumerateShortestPaths(g, index, 1, 1, 5);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], (std::vector<VertexId>{1}));
  EXPECT_TRUE(EnumerateShortestPaths(g, index, 0, 3, 5).empty());
}

TEST(PathEnumerationTest, DeterministicLexicographicOrder) {
  const Graph g = GenerateWattsStrogatz(60, 3, 0.2, 21);
  const SpcIndex index = MakeIndex(g);
  const auto a = EnumerateShortestPaths(g, index, 3, 40, 25);
  const auto b = EnumerateShortestPaths(g, index, 3, 40, 25);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

}  // namespace
}  // namespace pspc
