#ifndef PSPC_SRC_DYNAMIC_DYNAMIC_DSPC_INDEX_H_
#define PSPC_SRC_DYNAMIC_DYNAMIC_DSPC_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/digraph/digraph.h"
#include "src/digraph/dpspc_builder.h"
#include "src/digraph/dspc_index.h"
#include "src/dynamic/chunked_overlay.h"
#include "src/dynamic/dynamic_digraph.h"
#include "src/dynamic/edge_update.h"
#include "src/dynamic/repair_core.h"
#include "src/obs/flight_recorder.h"
#include "src/dynamic/stats_export.h"
#include "src/order/vertex_order.h"

/// Incremental maintenance of the directed 2-hop SPC index (paper
/// §II-A) under edge churn — the directed instantiation of the
/// direction-generic repair kernels in repair_core.h.
///
/// `DynamicDspcIndex` wraps an immutable `DiSpcIndex` with two
/// persistent chunked label overlays (one per label side) and repairs
/// both sides in place:
///
///  * **Insertion** `u -> v` — every changed out-reach pair `(h, y)`
///    gains a new shortest trough path `h .. u -> v .. y`, whose
///    `h .. u` prefix is itself trough-shortest and therefore recorded
///    in `Lin(u)`; one *forward* resumed pruned BFS per such hub,
///    seeded at `v`, repairs the in-labels it covers. The mirrored
///    backward pass seeds at `u` from `Lout(v)` and repairs
///    out-labels. Hubs repair in ascending rank order, the two
///    directions interleaved (a forward run's pruning certificates
///    read both label sides of higher-ranked hubs).
///
///  * **Deletion** `u -> v` — the source side (vertices whose
///    shortest paths *to* `v` cross the edge, detected by a pruned
///    reverse BFS from `u` against the still-exact index) and the
///    target side (mirror image, forward from `v`) are detected
///    per-direction; sender hubs re-run or count-subtract exactly as
///    in the undirected scheme, with stale-entry erasure over the
///    opposite region. Unlike the undirected cut, a vertex on a
///    directed cycle through the edge can sit on *both* sides — it
///    then owes one repair per direction, which touch disjoint label
///    sides.
///
///  * **Batches** — `ApplyBatch` is atomic: `PlanBatch` (directed
///    mode: `u -> v` and `v -> u` are distinct edges) validates
///    against the pre-batch graph up front and reduces to the net
///    effect; net deletions replay the sharp single-edge classifier,
///    net insertions coalesce into one multi-source resumed BFS per
///    (hub, direction) across all new edges. One generation bump per
///    batch.
///
/// The maintained-label invariant and the staleness policy carry over
/// from `DynamicSpcIndex` verbatim (stale entries record strictly
/// longer distances, so queries stay exact while both overlays slowly
/// accrete; a rebuild through the directed builder folds them away).
///
/// Threading: externally single-threaded, like the undirected index.
/// Concurrent serving goes through `src/serve/`: `IndexSnapshot`
/// captures both overlays (O(delta since the previous capture) each)
/// plus the shared base, and readers query the frozen views.
namespace pspc {

struct DynamicDiOptions {
  /// Rebuild when `overlay entries / base entries` exceeds this.
  double rebuild_threshold = 0.25;
  /// When false, StalenessRatio still grows but nothing auto-rebuilds
  /// (callers drive Rebuild() themselves).
  bool auto_rebuild = true;
  /// Pipeline used for staleness rebuilds (ordering recomputed from
  /// the current graph via DirectedDegreeOrder).
  DiPspcOptions rebuild_options;
  /// Threads for the erasure-sweep parallel-for (<= 0: all cores).
  int num_threads = 0;
  /// Registry receiving the `dynamic.*` metrics (counters mirrored
  /// from `Stats()`, stage-timing histograms, overlay gauges; both
  /// overlay sides summed). Null selects the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Flight recorder receiving rebuild start/end events. Null selects
  /// the process-global one.
  obs::FlightRecorder* flight_recorder = nullptr;
};

/// Directed kernel view (see repair_core.h for the contract). The
/// forward view covers hubs' out-reach: expansion over out-edges,
/// entries written to in-labels, certificates from the hub's
/// out-labels; `kForward = false` mirrors everything.
template <bool kForward>
struct DirectedRepairView {
  const DynamicDiGraph* graph = nullptr;
  ChunkedOverlay* write_side = nullptr;  // forward: the in-overlay
  ChunkedOverlay* hub_side = nullptr;    // forward: the out-overlay
  const VertexOrder* order = nullptr;

  std::span<const LabelEntry> Labels(VertexId v) const {
    return write_side->Labels(v);
  }
  std::span<const LabelEntry> HubLabels(VertexId v) const {
    return hub_side->Labels(v);
  }
  std::vector<LabelEntry>& Mutable(VertexId v) const {
    return write_side->Mutable(v);
  }
  ChunkedOverlay* WriteOverlay() const { return write_side; }
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    if constexpr (kForward) {
      graph->ForEachOutNeighbor(v, fn);
    } else {
      graph->ForEachInNeighbor(v, fn);
    }
  }
  template <typename Fn>
  void ForEachReverseNeighbor(VertexId v, Fn&& fn) const {
    if constexpr (kForward) {
      graph->ForEachInNeighbor(v, fn);
    } else {
      graph->ForEachOutNeighbor(v, fn);
    }
  }
  Rank RankOf(VertexId v) const { return order->RankOf(v); }
  VertexId VertexAt(Rank r) const { return order->VertexAt(r); }
  const std::vector<Rank>& VertexToRank() const {
    return order->VertexToRank();
  }
  VertexId NumVertices() const { return graph->NumVertices(); }
  /// View-oriented query: `s` on the hub side. For the forward view
  /// this is the real directed query `s -> t` (Lout(s) x Lin(t)); the
  /// backward view answers `t -> s` through the same merge.
  SpcResult Query(VertexId s, VertexId t) const {
    if (s == t) return {0, 1};
    return MergeLabelCounts(HubLabels(s), Labels(t));
  }
};

class DynamicDspcIndex {
 public:
  /// Wraps a prebuilt index. `graph` must be the exact graph `index`
  /// was built from.
  DynamicDspcIndex(DiGraph graph, DiSpcIndex index,
                   DynamicDiOptions options = {});

  /// Builds the initial index for `graph` through the directed
  /// builder under `DirectedDegreeOrder`.
  DynamicDspcIndex(DiGraph graph, const DiPspcOptions& build_options,
                   DynamicDiOptions options = {});

  // Self-referential (graph/overlay views point into owned members).
  DynamicDspcIndex(const DynamicDspcIndex&) = delete;
  DynamicDspcIndex& operator=(const DynamicDspcIndex&) = delete;

  /// Distance and exact count of shortest directed paths s -> t on the
  /// *current* graph.
  SpcResult Query(VertexId s, VertexId t) const;

  /// Single-edge updates; label repair runs before returning. Errors
  /// (self-loop, out-of-range, duplicate insert, missing delete) leave
  /// the index untouched. `u -> v` and `v -> u` are distinct edges.
  Status InsertEdge(VertexId u, VertexId v);
  Status DeleteEdge(VertexId u, VertexId v);
  Status Apply(const EdgeUpdate& update);

  /// Applies the batch *atomically* with coalesced insertion repair
  /// (see the class comment). On any validation error nothing is
  /// applied. Publishes one generation bump for the whole batch.
  Status ApplyBatch(const EdgeUpdateBatch& batch);

  /// Overlay entries (both sides) relative to base entries — what the
  /// staleness policy compares against `rebuild_threshold`.
  double StalenessRatio() const;

  /// Forces the full rebuild the staleness policy would trigger.
  void Rebuild();

  VertexId NumVertices() const { return graph_.NumVertices(); }
  EdgeId NumEdges() const { return graph_.NumEdges(); }

  /// True iff `u -> v` is an edge of the current graph.
  bool HasEdge(VertexId u, VertexId v) const { return graph_.HasEdge(u, v); }

  /// Current labels of `v` (base or overlay), rank-sorted.
  std::span<const LabelEntry> OutLabels(VertexId v) const {
    return out_overlay_.Labels(v);
  }
  std::span<const LabelEntry> InLabels(VertexId v) const {
    return in_overlay_.Labels(v);
  }

  /// Dual-CSR snapshot of the current graph.
  DiGraph MaterializeGraph() const { return graph_.Materialize(); }

  /// Monotone label-state version: bumped by every applied update
  /// (once per coalesced batch) and every rebuild.
  uint64_t Generation() const { return generation_; }

  /// Shared ownership of the current immutable base. Snapshots hold
  /// this so a later Rebuild cannot free the label arrays out from
  /// under an epoch still reading them.
  std::shared_ptr<const DiSpcIndex> SharedBaseIndex() const { return base_; }

  /// Freezes one overlay side into a structurally shared view and
  /// advances its capture boundary. Writer thread only —
  /// `IndexSnapshot::Capture` is the one intended caller.
  OverlayView CaptureOutOverlay() { return out_overlay_.Capture(); }
  OverlayView CaptureInOverlay() { return in_overlay_.Capture(); }

  /// The live chunked overlays (diagnostics: overlaid/copied counts).
  const ChunkedOverlay& OutOverlay() const { return out_overlay_; }
  const ChunkedOverlay& InOverlay() const { return in_overlay_; }

  const DiSpcIndex& BaseIndex() const { return *base_; }
  const VertexOrder& Order() const { return order_; }
  const DynamicStats& Stats() const { return stats_; }
  const DynamicDiOptions& Options() const { return options_; }

 private:
  using ForwardView = DirectedRepairView<true>;
  using BackwardView = DirectedRepairView<false>;

  ForwardView Forward() {
    return {&graph_, &in_overlay_, &out_overlay_, &order_};
  }
  BackwardView Backward() {
    return {&graph_, &out_overlay_, &in_overlay_, &order_};
  }

  void MaybeRebuild();
  /// Mirrors `stats_` deltas into the registry and refreshes the
  /// overlay/generation gauges; tail of every public mutation.
  void PublishMetrics();
  int SweepThreads() const;

  /// Coalesced insertion repair across `edges` (already applied to the
  /// graph): one multi-source resumed BFS per (hub, direction), the
  /// two directions interleaved in ascending rank order.
  void RepairInsertions(
      std::span<const std::pair<VertexId, VertexId>> edges);
  void RepairDeletion(VertexId u, VertexId v);

  DiGraph base_graph_;
  std::shared_ptr<const DiSpcIndex> base_;
  VertexOrder order_;
  DynamicDiGraph graph_;
  ChunkedOverlay out_overlay_;
  ChunkedOverlay in_overlay_;
  DynamicDiOptions options_;
  DynamicStats stats_;
  obs::DynamicStatsExporter obs_;
  obs::FlightRecorder* recorder_;
  uint64_t generation_ = 0;

  RepairScratch scratch_;
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_DYNAMIC_DSPC_INDEX_H_
