#include "src/order/hybrid_order.h"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/order/degree_order.h"

namespace pspc {

VertexOrder HybridOrder(const Graph& graph, VertexId delta) {
  const VertexId n = graph.NumVertices();
  std::vector<bool> is_core(n, false);
  std::vector<VertexId> core;
  for (VertexId v = 0; v < n; ++v) {
    if (graph.Degree(v) > delta) {
      is_core[v] = true;
      core.push_back(v);
    }
  }
  // Core-part: descending degree, deterministic tie-break by id.
  std::stable_sort(core.begin(), core.end(), [&graph](VertexId a, VertexId b) {
    return graph.Degree(a) > graph.Degree(b);
  });

  // Fringe-part: min-degree elimination restricted to fringe vertices.
  // Core vertices participate as (never-eliminated) neighbors so the
  // fill-in correctly reflects paths through the core.
  std::vector<std::unordered_set<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.Neighbors(v);
    adj[v].insert(nbrs.begin(), nbrs.end());
  }
  // Cap on the working degree at elimination time: min-degree
  // elimination on non-road graphs can densify the remainder into near-
  // cliques, turning the fill-in quadratic. Past the cap the remaining
  // fringe is appended by working degree instead — the same escape
  // hatch MinDegreeElimination uses for dense cores.
  const auto degree_cap = static_cast<VertexId>(
      std::max<double>(32.0, graph.AverageDegree() * 8.0));
  using HeapItem = std::pair<VertexId, VertexId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (VertexId v = 0; v < n; ++v) {
    if (!is_core[v]) heap.emplace(static_cast<VertexId>(adj[v].size()), v);
  }
  std::vector<bool> eliminated(n, false);
  std::vector<VertexId> fringe_elimination;
  while (!heap.empty()) {
    const auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[v]) continue;
    if (deg != adj[v].size()) {
      heap.emplace(static_cast<VertexId>(adj[v].size()), v);
      continue;
    }
    if (deg > degree_cap) break;  // remainder handled below
    eliminated[v] = true;
    fringe_elimination.push_back(v);
    std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
    for (VertexId u : nbrs) adj[u].erase(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        const VertexId a = nbrs[i], b = nbrs[j];
        if (adj[a].insert(b).second) adj[b].insert(a);
      }
    }
    for (VertexId u : nbrs) {
      if (!is_core[u] && !eliminated[u]) {
        heap.emplace(static_cast<VertexId>(adj[u].size()), u);
      }
    }
    adj[v].clear();
  }

  // Fringe survivors of the cap: append in ascending working degree so
  // that after the global core-first layout they rank just below the
  // core, densest first (mirrors MinDegreeElimination).
  std::vector<VertexId> capped;
  for (VertexId v = 0; v < n; ++v) {
    if (!is_core[v] && !eliminated[v]) capped.push_back(v);
  }
  std::stable_sort(capped.begin(), capped.end(),
                   [&adj](VertexId a, VertexId b) {
                     return adj[a].size() < adj[b].size();
                   });
  fringe_elimination.insert(fringe_elimination.end(), capped.begin(),
                            capped.end());

  // Final rank order: core first, then fringe in reverse elimination.
  std::vector<VertexId> order;
  order.reserve(n);
  order.insert(order.end(), core.begin(), core.end());
  order.insert(order.end(), fringe_elimination.rbegin(),
               fringe_elimination.rend());
  return VertexOrder(std::move(order));
}

}  // namespace pspc
