#ifndef PSPC_SRC_DYNAMIC_DYNAMIC_SPC_INDEX_H_
#define PSPC_SRC_DYNAMIC_DYNAMIC_SPC_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/build_options.h"
#include "src/dynamic/dynamic_graph.h"
#include "src/dynamic/edge_update.h"
#include "src/dynamic/label_overlay.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"
#include "src/order/vertex_order.h"

/// Incremental maintenance of the ESPC 2-hop index under edge churn.
///
/// `DynamicSpcIndex` wraps an immutable CSR `SpcIndex` with a
/// copy-on-write label overlay and repairs labels in place of the
/// full-rebuild the static pipeline would need:
///
///  * **Insertion** `{a, b}` — every changed label pair `(v, h)` gains
///    a new shortest trough path crossing the edge, whose hub-side
///    section is itself a trough-shortest path recorded in `L(a)` (or
///    `L(b)`). It therefore suffices to walk the two endpoint label
///    lists in ascending hub-rank order and run one *resumed pruned
///    BFS* per hub, seeded at the opposite endpoint with the hub's
///    recorded distance + 1 and trough count (the incremental scheme of
///    dynamic hub labeling, adapted to counts).
///
///  * **Deletion** `{a, b}` — affected hubs are detected by a pruned
///    partial BFS from each endpoint over the pre-deletion graph: the
///    BFS only expands vertices with `d(u, a) + 1 == d(u, b)` (the edge
///    lies on one of their shortest paths to the far endpoint, answered
///    by 2-hop queries), and classifies each as a *full sender* (every
///    shortest path to the far endpoint dies with the edge, so
///    distances from it can grow and its pruned restricted BFS is
///    re-run from scratch), a *subtractive sender* (a shared hub of
///    both endpoint labels that keeps alternative routes: provably
///    only its trough *counts* can drop, so a depth-capped BFS from
///    the far endpoint subtracts the through-edge path counts from the
///    existing entries directly — the workhorse that keeps deletions
///    cheap, since shared hubs are the high-ranked ones whose full
///    re-runs would each sweep most of the graph), or a mere
///    *receiver* (only entries stored at it change). Saturated counts
///    cannot be subtracted, so those hubs escalate to a full re-run.
///
/// Between rebuilds the maintained labels satisfy: every pair with a
/// positive trough count at the true shortest distance has a correct
/// entry, and any extra (stale) entry records a distance strictly
/// longer than the true one — such entries can never reach the minimum
/// in the query merge, so queries stay exact while the index slowly
/// accretes garbage. Deletions are the one place this invariant needs
/// active defense: a grown pair distance can *meet* a stale entry's
/// recorded distance, so any hub whose distance to the opposite region
/// grew re-runs whenever an opposite label still holds an entry for it
/// (see the task assembly in RepairDeletion). The staleness policy
/// watches the overlay size and folds everything into a fresh rebuild
/// (through the standard builder_facade pipeline, re-ordering
/// included) past a threshold.
///
/// Scope: unweighted undirected graphs over a fixed vertex universe
/// `[0, n)`; saturated counts remain saturating (as everywhere in the
/// library).
///
/// Threading: the index itself is single-threaded (one thread of
/// control for reads and writes). Concurrent serving goes through
/// `src/serve/`: a writer thread applies updates here and publishes
/// immutable `IndexSnapshot` generations (captured via `Generation()`,
/// `SharedBaseIndex()` and `Overlay()`), which readers query without
/// ever touching this object.
namespace pspc {

struct DynamicOptions {
  /// Rebuild when `overlay entries / base entries` exceeds this.
  double rebuild_threshold = 0.25;
  /// When false, StalenessRatio still grows but nothing auto-rebuilds
  /// (callers drive Rebuild() themselves).
  bool auto_rebuild = true;
  /// Pipeline used for staleness rebuilds (ordering recomputed from
  /// the current graph, construction parallel per these options).
  BuildOptions rebuild_options;
  /// Threads for the parallel repair phases (<= 0: all cores).
  int num_threads = 0;
};

struct DynamicStats {
  size_t insertions_applied = 0;
  size_t deletions_applied = 0;
  size_t resumed_bfs_runs = 0;   ///< insertion repair BFS launches
  size_t affected_hubs = 0;      ///< deletion hubs fully re-run
  size_t subtract_repairs = 0;   ///< deletion hubs repaired by subtraction
  size_t entries_inserted = 0;
  size_t entries_renewed = 0;
  size_t entries_erased = 0;
  size_t rebuilds = 0;
  double repair_seconds = 0.0;
  double rebuild_seconds = 0.0;

  std::string ToString() const;
};

class DynamicSpcIndex {
 public:
  /// Wraps a prebuilt index. `graph` must be the exact graph `index`
  /// was built from.
  DynamicSpcIndex(Graph graph, SpcIndex index, DynamicOptions options = {});

  /// Builds the initial index for `graph` through builder_facade.
  DynamicSpcIndex(Graph graph, const BuildOptions& build_options,
                  DynamicOptions options = {});

  // Self-referential (graph/label views point into owned members).
  DynamicSpcIndex(const DynamicSpcIndex&) = delete;
  DynamicSpcIndex& operator=(const DynamicSpcIndex&) = delete;

  /// Distance and exact shortest-path count on the *current* graph.
  SpcResult Query(VertexId s, VertexId t) const;

  /// Single-edge updates; label repair runs before returning. Errors
  /// (self-loop, out-of-range, duplicate insert, missing delete) leave
  /// the index untouched.
  Status InsertEdge(VertexId u, VertexId v);
  Status DeleteEdge(VertexId u, VertexId v);
  Status Apply(const EdgeUpdate& update);

  /// Applies updates in order, stopping at the first failure (already
  /// applied updates stay applied; the index remains consistent).
  Status ApplyBatch(const EdgeUpdateBatch& batch);

  /// Overlay entries relative to base entries — what the staleness
  /// policy compares against `rebuild_threshold`.
  double StalenessRatio() const;

  /// Forces the full rebuild the staleness policy would trigger.
  void Rebuild();

  VertexId NumVertices() const { return graph_.NumVertices(); }
  EdgeId NumEdges() const { return graph_.NumEdges(); }

  /// True iff `{u, v}` is an edge of the current graph.
  bool HasEdge(VertexId u, VertexId v) const { return graph_.HasEdge(u, v); }

  /// Current labels of `v` (base or overlay), rank-sorted.
  std::span<const LabelEntry> Labels(VertexId v) const {
    return overlay_.Labels(v);
  }

  /// CSR snapshot of the current graph.
  Graph MaterializeGraph() const { return graph_.Materialize(); }

  /// Monotone label-state version: bumped by every applied update and
  /// every rebuild. `IndexSnapshot::Capture` tags snapshots with it so
  /// the serving layer can tell whether anything changed since the
  /// last published generation.
  uint64_t Generation() const { return generation_; }

  /// Shared ownership of the current immutable base. Snapshots hold
  /// this so a later Rebuild cannot free the CSR arrays out from under
  /// an epoch still reading them.
  std::shared_ptr<const SpcIndex> SharedBaseIndex() const { return base_; }

  /// The copy-on-write overlay (snapshot capture copies its map).
  const LabelOverlay& Overlay() const { return overlay_; }

  const SpcIndex& BaseIndex() const { return *base_; }
  const VertexOrder& Order() const { return order_; }
  const DynamicStats& Stats() const { return stats_; }
  const DynamicOptions& Options() const { return options_; }

 private:
  void InitScratch();
  void MaybeRebuild();

  void RepairInsertion(VertexId a, VertexId b);
  void ResumedInsertBfs(Rank hub_rank, VertexId start, uint32_t seed_dist,
                        Count seed_count);

  // Deletion machinery. `side` buffers are per-endpoint; flags hold 0
  // (untouched), 1 (full sender), 2 (subtractive sender) or -1
  // (receiver); any non-zero value marks the affected region.
  struct AffectedSide {
    std::vector<int8_t> flags;         // indexed by vertex id
    std::vector<Rank> full_ranks;      // hubs needing a full re-run
    std::vector<Rank> subtract_ranks;  // hubs repairable by subtraction
    std::vector<VertexId> touched;     // everything in the region
  };
  void RepairDeletion(VertexId a, VertexId b);
  void DetectAffectedSide(VertexId from, VertexId to,
                          const std::vector<uint8_t>& hub_of_a,
                          const std::vector<uint8_t>& hub_of_b,
                          AffectedSide* side) const;
  // Plain BFS distances from `source` over the current graph view.
  std::vector<uint32_t> BfsDistances(VertexId source) const;
  void RepairHubAfterDeletion(Rank hub_rank, const AffectedSide& opposite);
  // Depth-capped count subtraction for a shared hub; escalates to
  // RepairHubAfterDeletion itself when saturation blocks subtraction.
  void SubtractiveDeleteRepair(Rank hub_rank, VertexId start,
                               uint32_t seed_dist, Count seed_count,
                               uint32_t depth_cap,
                               const AffectedSide& opposite);

  // Scratch: loads `hub_dist_[rank] = dist` for the hub's current
  // labels; ResetHubDist undoes exactly those writes.
  void LoadHubDist(VertexId hub);
  void ResetHubDist(VertexId hub);

  Graph base_graph_;
  std::shared_ptr<const SpcIndex> base_;
  VertexOrder order_;
  DynamicGraph graph_;
  LabelOverlay overlay_;
  DynamicOptions options_;
  DynamicStats stats_;
  uint64_t generation_ = 0;

  // Reusable n-sized scratch (reset via touched lists after each use).
  std::vector<uint32_t> hub_dist_;   // by rank; kInfSpcDistance = unset
  std::vector<uint32_t> bfs_dist_;   // by vertex; kInfSpcDistance = unset
  std::vector<Count> bfs_count_;     // by vertex
  std::vector<VertexId> bfs_touched_;
  std::vector<VertexId> bfs_queue_;
  std::vector<uint8_t> updated_;     // by vertex; deletion repair marks
  std::vector<uint8_t> subtract_side_;  // by rank; 1 = a-side, 2 = b-side
  std::vector<uint32_t> bucket_max_;    // by rank; max target entry dist
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_DYNAMIC_SPC_INDEX_H_
