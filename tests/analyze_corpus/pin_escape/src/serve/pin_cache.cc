#include "src/serve/pin_cache.h"

void PinCache::Remember(int hits) {
  hits_ = hits_ + hits;
}

void PinHolder::Reset() {
  ref_.Release();
}
