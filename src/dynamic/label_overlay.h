#ifndef PSPC_SRC_DYNAMIC_LABEL_OVERLAY_H_
#define PSPC_SRC_DYNAMIC_LABEL_OVERLAY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/label/label_entry.h"
#include "src/label/spc_index.h"

/// Copy-on-write per-vertex delta overlay on top of an immutable
/// `SpcIndex`.
///
/// Label repair rewrites whole per-vertex entry lists, so the overlay
/// holds a private rank-sorted copy for exactly the vertices a repair
/// has touched; every other vertex keeps reading the base index's CSR
/// span. Queries see one uniform `Labels(v)` view. The owning
/// `DynamicSpcIndex` watches `OverlaidEntries()` as its staleness
/// signal and folds the overlay away by rebuilding the base.
namespace pspc {

class LabelOverlay {
 public:
  /// `base` must outlive the overlay (the owning index rebases on
  /// rebuild).
  explicit LabelOverlay(const SpcIndex* base) : base_(base) {}

  /// Swaps in a freshly built base and drops every overlaid vertex.
  void Rebase(const SpcIndex* base) {
    base_ = base;
    overlay_.clear();
  }

  /// Current labels of `v`: the overlaid copy when present, the base
  /// span otherwise. Invalidated by Mutable(v) for the same vertex.
  std::span<const LabelEntry> Labels(VertexId v) const {
    const auto it = overlay_.find(v);
    if (it == overlay_.end()) return base_->Labels(v);
    return {it->second.data(), it->second.size()};
  }

  /// Mutable per-vertex list, copied from the base on first touch.
  /// Must stay sorted by hub rank (callers insert via rank position).
  std::vector<LabelEntry>& Mutable(VertexId v) {
    const auto it = overlay_.find(v);
    if (it != overlay_.end()) return it->second;
    const auto base_span = base_->Labels(v);
    return overlay_.emplace(v, std::vector<LabelEntry>(base_span.begin(),
                                                       base_span.end()))
        .first->second;
  }

  bool Overlaid(VertexId v) const { return overlay_.contains(v); }

  /// The overlaid vertex -> entry-list map. `IndexSnapshot::Capture`
  /// copies it to freeze a queryable view of the current labels.
  const std::unordered_map<VertexId, std::vector<LabelEntry>>& Map() const {
    return overlay_;
  }

  size_t OverlaidVertices() const { return overlay_.size(); }

  /// Total entries held out-of-line — the staleness signal. O(number
  /// of overlaid vertices).
  size_t OverlaidEntries() const {
    size_t total = 0;
    for (const auto& [v, entries] : overlay_) total += entries.size();
    return total;
  }

 private:
  const SpcIndex* base_;
  std::unordered_map<VertexId, std::vector<LabelEntry>> overlay_;
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_LABEL_OVERLAY_H_
