#ifndef PSPC_SRC_DYNAMIC_CHUNKED_OVERLAY_H_
#define PSPC_SRC_DYNAMIC_CHUNKED_OVERLAY_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/label/label_entry.h"
#include "src/label/packed_label.h"

/// Persistent (copy-on-write, structurally shared) per-vertex label
/// overlay on top of an immutable base label table (`BaseLabelMap`:
/// the undirected `SpcIndex`, or one side of the directed
/// `DiSpcIndex`) — the writer-side label store of the dynamic indexes
/// and, through `OverlayView`, the label store of every published
/// `IndexSnapshot`.
///
/// Label repair rewrites whole per-vertex entry lists, so the overlay
/// holds a private rank-sorted `LabelChunk` for exactly the vertices a
/// repair has touched; every other vertex keeps reading the base
/// index's CSR span. That much is unchanged from the original
/// `unordered_map<VertexId, vector<LabelEntry>>` design. What changed
/// is snapshot capture: the map design deep-copied the whole overlay
/// per publish — O(overlay), growing without bound under insert-heavy
/// streams until a rebuild — while this layout makes capture O(delta
/// since the previous capture):
///
///  * chunks are held by `shared_ptr` and grouped into fixed-size
///    **pages** (`kOverlayPageSize` consecutive vertex ids per page),
///    themselves held by `shared_ptr` in a root page directory;
///  * a capture freezes the root by aliasing it (one `shared_ptr`
///    copy) and advances the overlay's write generation;
///  * the writer clones lazily on first touch after a capture —
///    root, page, and chunk each carry the generation they were last
///    privately owned at, so a write re-copies only the O(1) spine
///    (root + page) plus the touched vertex's chunk, and every later
///    write in the same generation mutates in place;
///  * everything untouched since the previous capture stays aliased by
///    every snapshot that can still reach it, and a chunk's memory is
///    released exactly when the last snapshot holding its page
///    retires (see `SnapshotManager::Reclaim`).
///
/// The per-capture "copied vertices" count (`OverlayView::
/// CopiedVertices`) is therefore exactly the number of vertices
/// repairs touched in the capture interval — the publish-cost metric
/// `bench_serving` reports and CI bounds.
///
/// Threading: the overlay itself is single-writer (the thread of
/// control that owns `DynamicSpcIndex`). Readers never touch it — they
/// read `OverlayView`s, whose reachable pages and chunks are frozen by
/// the generation discipline above and published via the seq_cst
/// snapshot pointer swap in `SnapshotManager` (which supplies the
/// happens-before edge).
namespace pspc {

inline constexpr uint32_t kOverlayPageBits = 8;
inline constexpr size_t kOverlayPageSize = size_t{1} << kOverlayPageBits;

/// One page of per-vertex chunk slots; a null slot reads the base.
struct OverlayPage {
  std::array<LabelChunkPtr, kOverlayPageSize> slots{};
};

using OverlayPagePtr = std::shared_ptr<OverlayPage>;
/// Root directory: one entry per page, null = whole page reads base.
using OverlayDirectory = std::vector<OverlayPagePtr>;

/// Immutable freeze of a `ChunkedOverlay` as of one capture. Copying a
/// view is one `shared_ptr` copy; the view (and any snapshot holding
/// it) keeps every reachable page and chunk alive, and releases those
/// references — the chunk-reclaim half of epoch retirement — when it
/// is destroyed.
class OverlayView {
 public:
  OverlayView() = default;

  /// The frozen chunk of `v`, or nullptr when `v` reads the base.
  const LabelChunk* Chunk(VertexId v) const {
    if (pages_ == nullptr) return nullptr;
    const size_t p = v >> kOverlayPageBits;
    const OverlayPagePtr& page = (*pages_)[p];
    if (page == nullptr) return nullptr;
    return page->slots[v & (kOverlayPageSize - 1)].get();
  }

  /// Vertices held out-of-line as of the capture.
  size_t OverlaidVertices() const { return overlaid_; }

  /// Vertices whose chunk had to be (re)copied since the *previous*
  /// capture — the publish-cost delta. Everything else aliases the
  /// prior capture's chunks. (The retired map design copied
  /// `OverlaidVertices()` of them, every time.)
  size_t CopiedVertices() const { return copied_; }

 private:
  friend class ChunkedOverlay;

  std::shared_ptr<const OverlayDirectory> pages_;
  size_t overlaid_ = 0;
  size_t copied_ = 0;
};

class ChunkedOverlay {
 public:
  /// `base` views an index that must outlive the overlay (the owning
  /// index rebases on rebuild). The overlay is direction-agnostic: the
  /// base map may be the undirected `SpcIndex` label table or either
  /// side (out/in) of the directed `DiSpcIndex`.
  explicit ChunkedOverlay(BaseLabelMap base) { Rebase(base); }

  /// Swaps in a freshly built base and drops every overlaid vertex.
  /// Captures taken before the rebase keep the old pages (and the old
  /// base, via the snapshot's shared base pointer) alive on their own.
  void Rebase(BaseLabelMap base) {
    base_ = base;
    const auto n = static_cast<size_t>(base.num_vertices);
    const size_t num_pages = (n + kOverlayPageSize - 1) >> kOverlayPageBits;
    ++write_gen_;
    root_ = std::make_shared<OverlayDirectory>(num_pages);
    root_gen_ = write_gen_;
    page_gen_.assign(num_pages, 0);
    chunk_gen_.assign(n, 0);
    page_occupied_.assign(num_pages, 0);
    occupied_pages_.clear();
    overlaid_vertices_ = 0;
    copied_since_capture_ = 0;
  }

  /// Current labels of `v`: the overlaid chunk when present, the base
  /// span otherwise. Invalidated by Mutable(v) for the same vertex.
  std::span<const LabelEntry> Labels(VertexId v) const {
    const LabelChunk* chunk = ChunkAt(v);
    return chunk != nullptr ? ChunkSpan(*chunk) : base_.Labels(v);
  }

  /// Mutable per-vertex list, copied from the base on first touch and
  /// unshared from captured views on first touch per capture interval
  /// (in between, writes land in place — the chunk is provably
  /// private). Must stay sorted by hub rank (callers insert via rank
  /// position).
  std::vector<LabelEntry>& Mutable(VertexId v) {
    if (root_gen_ != write_gen_) {
      // First write since the last capture: unshare the root spine.
      root_ = std::make_shared<OverlayDirectory>(*root_);
      root_gen_ = write_gen_;
    }
    const size_t p = v >> kOverlayPageBits;
    OverlayPagePtr& page = (*root_)[p];
    if (page == nullptr) {
      page = std::make_shared<OverlayPage>();
      page_gen_[p] = write_gen_;
    } else if (page_gen_[p] != write_gen_) {
      page = std::make_shared<OverlayPage>(*page);
      page_gen_[p] = write_gen_;
    }
    LabelChunkPtr& slot = page->slots[v & (kOverlayPageSize - 1)];
    if (slot == nullptr) {
      slot = MakeLabelChunk(base_.Labels(v));
      chunk_gen_[v] = write_gen_;
      ++overlaid_vertices_;
      ++copied_since_capture_;
      if (page_occupied_[p]++ == 0) {
        occupied_pages_.push_back(static_cast<uint32_t>(p));
      }
    } else if (chunk_gen_[v] != write_gen_) {
      // Unshare — and when the frozen chunk was compacted, materialize
      // its entries exactly once: the writable clone carries raw
      // entries only, never the packed twin (which the first repair
      // write would silently invalidate) and never a second decoded
      // copy alongside it.
      auto clone = std::make_shared<LabelChunk>();
      if (slot->entries.empty() && !slot->packed.empty()) {
        PackedBlockView(slot->packed.data()).DecodeAll(&clone->entries);
      } else {
        clone->entries = slot->entries;
      }
      slot = std::move(clone);
      chunk_gen_[v] = write_gen_;
      ++copied_since_capture_;
    } else {
      // In-place write to a privately owned chunk: any packed twin a
      // compaction pass attached this interval goes stale now.
      slot->packed.clear();
    }
    return slot->entries;
  }

  bool Overlaid(VertexId v) const { return ChunkAt(v) != nullptr; }

  /// Swaps in a replacement chunk for an already-overlaid vertex under
  /// the same COW discipline as `Mutable`: the spine is unshared, the
  /// old chunk stays untouched for any capture that aliases it, and
  /// the swap counts toward the next capture's publish delta exactly
  /// once per interval. The compaction pass uses this to attach packed
  /// twins; `chunk` must decode to the same entries the vertex held.
  void ReplaceChunk(VertexId v, LabelChunkPtr chunk) {
    if (root_gen_ != write_gen_) {
      root_ = std::make_shared<OverlayDirectory>(*root_);
      root_gen_ = write_gen_;
    }
    const size_t p = v >> kOverlayPageBits;
    OverlayPagePtr& page = (*root_)[p];
    if (page_gen_[p] != write_gen_) {
      page = std::make_shared<OverlayPage>(*page);
      page_gen_[p] = write_gen_;
    }
    if (chunk_gen_[v] != write_gen_) {
      chunk_gen_[v] = write_gen_;
      ++copied_since_capture_;
    }
    page->slots[v & (kOverlayPageSize - 1)] = std::move(chunk);
  }

  /// Visits every overlaid vertex (`fn(VertexId, const LabelChunk&)`)
  /// in occupied-page order. Cost is proportional to the overlay
  /// footprint, like `OverlaidEntries`. The chunks are the writer's
  /// current ones — do not call `Mutable`/`ReplaceChunk` while
  /// iterating.
  template <typename Fn>
  void ForEachOverlaid(Fn&& fn) const {
    for (const uint32_t p : occupied_pages_) {
      const OverlayPagePtr& page = (*root_)[p];
      if (page == nullptr) continue;
      for (size_t s = 0; s < kOverlayPageSize; ++s) {
        const LabelChunkPtr& chunk = page->slots[s];
        if (chunk != nullptr) {
          fn(static_cast<VertexId>((size_t{p} << kOverlayPageBits) | s), *chunk);
        }
      }
    }
  }

  /// Freezes the current state into a view and advances the capture
  /// boundary: the next write to any vertex re-copies its chunk (and
  /// spine) instead of mutating what the view now aliases. Writer
  /// thread only.
  OverlayView Capture() {
    OverlayView view;
    view.pages_ = root_;
    view.overlaid_ = overlaid_vertices_;
    view.copied_ = copied_since_capture_;
    copied_since_capture_ = 0;
    ++write_gen_;
    return view;
  }

  size_t OverlaidVertices() const { return overlaid_vertices_; }

  /// Vertices touched since the last capture — what the next capture
  /// will report as its publish cost.
  size_t CopiedSinceCapture() const { return copied_since_capture_; }

  /// Total entries held out-of-line — the staleness signal. Scans
  /// only pages that hold at least one chunk (the occupied-pages
  /// list), so the cost is proportional to the overlay's footprint —
  /// at worst kOverlayPageSize slots per overlaid vertex, independent
  /// of graph size — like the map walk this replaced.
  size_t OverlaidEntries() const {
    size_t total = 0;
    for (const uint32_t p : occupied_pages_) {
      for (const LabelChunkPtr& chunk : (*root_)[p]->slots) {
        if (chunk != nullptr) total += chunk->entries.size();
      }
    }
    return total;
  }

 private:
  const LabelChunk* ChunkAt(VertexId v) const {
    const OverlayPagePtr& page = (*root_)[v >> kOverlayPageBits];
    if (page == nullptr) return nullptr;
    return page->slots[v & (kOverlayPageSize - 1)].get();
  }

  BaseLabelMap base_;
  std::shared_ptr<OverlayDirectory> root_;
  uint64_t write_gen_ = 0;   // current capture interval
  uint64_t root_gen_ = 0;    // interval the root was last unshared at
  std::vector<uint64_t> page_gen_;   // ditto, per page
  std::vector<uint64_t> chunk_gen_;  // ditto, per vertex chunk
  std::vector<uint32_t> page_occupied_;   // chunks held, per page
  std::vector<uint32_t> occupied_pages_;  // pages with any chunk
  size_t overlaid_vertices_ = 0;
  size_t copied_since_capture_ = 0;
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_CHUNKED_OVERLAY_H_
